#include "version/version_set.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

#include "db/filename.h"
#include "io/wal_reader.h"
#include "table/table_reader.h"
#include "util/clock.h"
#include "util/comparator.h"
#include "util/logging.h"

namespace lsmlab {

bool LevelIsTiered(DataLayout layout, int level, int num_levels) {
  switch (layout) {
    case DataLayout::kLeveling:
      // Even L0 is merged down immediately; no level accumulates runs.
      return false;
    case DataLayout::kTiering:
      return true;
    case DataLayout::kLazyLeveling:
      // Dostoevsky: all levels tiered except the last.
      return level < num_levels - 1;
    case DataLayout::kOneLeveling:
      // RocksDB default: only L0 accumulates runs.
      return level == 0;
  }
  return false;
}

Version::Version(const Options* options, const InternalKeyComparator* icmp)
    : options_(options), icmp_(icmp) {
  files_.resize(static_cast<size_t>(options->num_levels));
}

bool Version::IsTieredLevel(int level) const {
  return LevelIsTiered(options_->data_layout, level, options_->num_levels);
}

uint64_t Version::LevelBytes(int level) const {
  uint64_t total = 0;
  for (const auto& f : files_[level]) {
    total += f.file_size;
  }
  return total;
}

uint64_t Version::TotalBytes() const {
  uint64_t total = 0;
  for (int level = 0; level < num_levels(); ++level) {
    total += LevelBytes(level);
  }
  return total;
}

uint64_t Version::TotalEntries() const {
  uint64_t total = 0;
  for (const auto& level : files_) {
    for (const auto& f : level) {
      total += f.num_entries;
    }
  }
  return total;
}

int Version::TotalSortedRuns() const {
  int runs = 0;
  for (int level = 0; level < num_levels(); ++level) {
    if (files_[level].empty()) {
      continue;
    }
    runs += IsTieredLevel(level) ? NumFiles(level) : 1;
  }
  return runs;
}

std::vector<const FileMetaData*> Version::FilesContaining(
    int level, const Slice& user_key) const {
  std::vector<const FileMetaData*> result;
  const Comparator* ucmp = icmp_->user_comparator();
  // L0 files overlap in every layout (flushes are not key-partitioned), so
  // L0 is always probed exhaustively, newest file first.
  if (level == 0 || IsTieredLevel(level)) {
    // Files are kept newest-first; all covering files are candidates.
    for (const auto& f : files_[level]) {
      if (ucmp->Compare(user_key, f.smallest.user_key()) >= 0 &&
          ucmp->Compare(user_key, f.largest.user_key()) <= 0) {
        result.push_back(&f);
      }
    }
  } else {
    // Files are sorted by smallest key and disjoint: binary search.
    const auto& files = files_[level];
    size_t lo = 0, hi = files.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (ucmp->Compare(files[mid].largest.user_key(), user_key) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < files.size() &&
        ucmp->Compare(user_key, files[lo].smallest.user_key()) >= 0) {
      result.push_back(&files[lo]);
    }
  }
  return result;
}

std::vector<const FileMetaData*> Version::FilesOverlapping(
    int level, const Slice* begin, const Slice* end) const {
  std::vector<const FileMetaData*> result;
  const Comparator* ucmp = icmp_->user_comparator();
  for (const auto& f : files_[level]) {
    if (begin != nullptr &&
        ucmp->Compare(f.largest.user_key(), *begin) < 0) {
      continue;
    }
    if (end != nullptr && ucmp->Compare(f.smallest.user_key(), *end) > 0) {
      continue;
    }
    result.push_back(&f);
  }
  return result;
}

std::string Version::DebugString() const {
  std::string result;
  for (int level = 0; level < num_levels(); ++level) {
    if (files_[level].empty()) {
      continue;
    }
    char buf[128];
    std::snprintf(buf, sizeof(buf), "level %d (%s): %d files, %llu bytes\n",
                  level, IsTieredLevel(level) ? "tiered" : "leveled",
                  NumFiles(level),
                  static_cast<unsigned long long>(LevelBytes(level)));
    result += buf;
  }
  return result;
}

void Version::CountIndexKinds(int level, int* learned, int* fence,
                              int* unopened) const {
  *learned = 0;
  *fence = 0;
  *unopened = 0;
  for (const auto& f : files_[static_cast<size_t>(level)]) {
    std::shared_ptr<TableReader> reader;
    if (f.table_handle != nullptr) {
      MutexLock lock(&f.table_handle->mu);
      reader = f.table_handle->reader;
    }
    if (reader == nullptr) {
      ++*unopened;
    } else if (reader->index_type() == IndexType::kLearnedPLR) {
      ++*learned;
    } else {
      ++*fence;
    }
  }
}

// ---------------------------------------------------------------------------
// VersionSetBuilder: applies a sequence of edits to a base version.
// ---------------------------------------------------------------------------

class VersionSetBuilder {
 public:
  VersionSetBuilder(const Options* options, const InternalKeyComparator* icmp,
                    const Version* base)
      : options_(options), icmp_(icmp) {
    levels_.resize(static_cast<size_t>(options->num_levels));
    if (base != nullptr) {
      for (int level = 0; level < base->num_levels(); ++level) {
        for (const auto& f : base->files(level)) {
          levels_[level][f.file_number] = f;
        }
      }
    }
  }

  void Apply(const VersionEdit& edit) {
    for (const auto& [level, number] : edit.deleted_files()) {
      if (level < static_cast<int>(levels_.size())) {
        levels_[level].erase(number);
      }
    }
    for (const auto& [level, f] : edit.new_files()) {
      assert(level < static_cast<int>(levels_.size()));
      levels_[level][f.file_number] = f;
    }
  }

  std::shared_ptr<Version> Build() const {
    auto v = std::make_shared<Version>(options_, icmp_);
    for (size_t level = 0; level < levels_.size(); ++level) {
      auto& out = v->files_[level];
      out.reserve(levels_[level].size());
      for (const auto& [number, f] : levels_[level]) {
        out.push_back(f);
        if (out.back().table_handle == nullptr) {
          // Fresh file (flush/compaction output or manifest replay): give it
          // a reader pin. Files carried over from the base version share
          // their existing handle, so a reader resolved under any version
          // stays pinned in every later one.
          out.back().table_handle = std::make_shared<TableHandle>();
        }
      }
      if (level == 0 ||
          LevelIsTiered(options_->data_layout, static_cast<int>(level),
                        options_->num_levels)) {
        // Newest run first: higher file numbers are newer.
        std::sort(out.begin(), out.end(),
                  [](const FileMetaData& a, const FileMetaData& b) {
                    return a.file_number > b.file_number;
                  });
      } else {
        std::sort(out.begin(), out.end(),
                  [this](const FileMetaData& a, const FileMetaData& b) {
                    return icmp_->Compare(a.smallest.Encode(),
                                          b.smallest.Encode()) < 0;
                  });
      }
    }
    return v;
  }

 private:
  const Options* const options_;
  const InternalKeyComparator* const icmp_;
  std::vector<std::map<uint64_t, FileMetaData>> levels_;
};

// ---------------------------------------------------------------------------
// VersionSet
// ---------------------------------------------------------------------------

VersionSet::VersionSet(std::string dbname, const Options* options,
                       const InternalKeyComparator* icmp)
    : dbname_(std::move(dbname)),
      options_(options),
      icmp_(icmp),
      current_(std::make_shared<Version>(options, icmp)) {}

VersionSet::~VersionSet() = default;

Env* VersionSet::env() const { return options_->env; }

void VersionSet::MarkFileNumberUsed(uint64_t number) {
  MutexLock lock(&mu_);
  MarkFileNumberUsedLocked(number);
}

void VersionSet::MarkFileNumberUsedLocked(uint64_t number) {
  if (next_file_number_ <= number) {
    next_file_number_ = number + 1;
  }
}

Status VersionSet::WriteSnapshot(wal::Writer* writer) {
  VersionEdit edit;
  edit.SetComparatorName(icmp_->user_comparator()->Name());
  for (int level = 0; level < current_->num_levels(); ++level) {
    for (const auto& f : current_->files(level)) {
      edit.AddFile(level, f);
    }
  }
  edit.SetLogNumber(log_number_);
  edit.SetNextFileNumber(next_file_number_);
  edit.SetLastSequence(last_sequence_.load(std::memory_order_acquire));
  std::string record;
  edit.EncodeTo(&record);
  return writer->AddRecord(record);
}

Status VersionSet::CreateNew() {
  MutexLock lock(&mu_);
  return CreateNewLocked();
}

Status VersionSet::CreateNewLocked() {
  lock_rank::IoAllowedSection manifest_io(
      "Manifest creation runs under VersionSet::mu_ by design: the manifest "
      "is the state mu_ guards, and no other lock is reachable from here.");
  manifest_file_number_ = next_file_number_++;
  std::string manifest_name = ManifestFileName(dbname_, manifest_file_number_);
  Status s = env()->NewWritableFile(manifest_name, &manifest_file_);
  if (!s.ok()) {
    return s;
  }
  manifest_log_ = std::make_unique<wal::Writer>(manifest_file_.get());
  s = WriteSnapshot(manifest_log_.get());
  if (s.ok()) {
    s = manifest_file_->Sync();
  }
  if (s.ok()) {
    // Point CURRENT at the new manifest (atomically via temp + rename).
    std::string current_contents =
        manifest_name.substr(dbname_.size() + 1) + "\n";
    s = WriteStringToFile(env(), current_contents, CurrentFileName(dbname_));
  }
  return s;
}

Status VersionSet::WriteCheckpointManifest(const std::string& dir) {
  MutexLock lock(&mu_);
  lock_rank::IoAllowedSection checkpoint_io(
      "Checkpoint manifest snapshot runs under VersionSet::mu_ like every "
      "other manifest write: mu_ freezes the exact version being captured.");
  // Reuse the live manifest number: it is already below next_file_number_
  // (which the snapshot encodes), so a later open of the checkpoint never
  // collides when it rolls its own fresh manifest.
  const std::string manifest_name =
      ManifestFileName(dir, manifest_file_number_);
  std::unique_ptr<WritableFile> file;
  Status s = env()->NewWritableFile(manifest_name, &file);
  if (!s.ok()) {
    return s;
  }
  wal::Writer writer(file.get());
  s = WriteSnapshot(&writer);
  if (s.ok()) {
    s = file->Sync();
  }
  if (s.ok()) {
    s = file->Close();
  }
  if (!s.ok()) {
    // Best-effort cleanup of the torn snapshot; the write error wins.
    (void)env()->RemoveFile(manifest_name);
    return s;
  }
  std::string current_contents = manifest_name.substr(dir.size() + 1) + "\n";
  return WriteStringToFile(env(), current_contents, CurrentFileName(dir));
}

Status VersionSet::RollManifest() {
  MutexLock lock(&mu_);
  // Drop the (possibly torn) manifest handles before opening the new file;
  // a full snapshot of the current version replaces the edit history, so
  // nothing from the old manifest is needed again.
  manifest_log_.reset();
  manifest_file_.reset();
  return CreateNewLocked();
}

Status VersionSet::Recover() {
  MutexLock lock(&mu_);
  lock_rank::IoAllowedSection manifest_io(
      "Manifest replay reads CURRENT + the manifest under VersionSet::mu_ "
      "by design: recovery is single-threaded and mu_ guards the very state "
      "being rebuilt.");
  std::string current_contents;
  Status s =
      ReadFileToString(env(), CurrentFileName(dbname_), &current_contents);
  if (!s.ok()) {
    return s;
  }
  if (current_contents.empty() || current_contents.back() != '\n') {
    return Status::Corruption("CURRENT file malformed");
  }
  current_contents.pop_back();
  std::string manifest_name = dbname_ + "/" + current_contents;

  std::unique_ptr<SequentialFile> manifest;
  s = env()->NewSequentialFile(manifest_name, &manifest);
  if (!s.ok()) {
    return s;
  }

  struct Reporter : public wal::Reader::Reporter {
    Status status;
    void Corruption(size_t, const Status& s) override {
      if (status.ok()) {
        status = s;
      }
    }
  } reporter;

  VersionSetBuilder builder(options_, icmp_, current_.get());
  wal::Reader reader(manifest.get(), &reporter);
  Slice record;
  std::string scratch;
  bool have_log_number = false, have_next_file = false, have_last_seq = false;
  while (reader.ReadRecord(&record, &scratch)) {
    if (!reporter.status.ok()) {
      break;
    }
    VersionEdit edit;
    s = edit.DecodeFrom(record);
    if (!s.ok()) {
      return s;
    }
    if (edit.has_comparator() &&
        edit.comparator() != icmp_->user_comparator()->Name()) {
      return Status::InvalidArgument(
          "comparator does not match existing DB: ", edit.comparator());
    }
    builder.Apply(edit);
    if (edit.has_log_number()) {
      log_number_ = edit.log_number();
      have_log_number = true;
    }
    if (edit.has_next_file_number()) {
      next_file_number_ = edit.next_file_number();
      have_next_file = true;
    }
    if (edit.has_last_sequence()) {
      last_sequence_.store(edit.last_sequence(), std::memory_order_release);
      have_last_seq = true;
    }
  }
  // Manifest replay follows the WAL recovery policy: the manifest uses the
  // same log format, and every acknowledged record was fsynced by
  // LogAndApply, so a corrupt record can only be a torn unacked tail after
  // a crash. Point-in-time recovery keeps the prefix before the corruption;
  // absolute consistency refuses to open. The meta-fields check below still
  // rejects damage early enough to lose the required fields.
  if (!reporter.status.ok() &&
      options_->wal_recovery_mode == WalRecoveryMode::kAbsoluteConsistency) {
    return reporter.status;
  }
  if (!have_next_file || !have_log_number || !have_last_seq) {
    return Status::Corruption("manifest missing meta fields");
  }
  current_ = builder.Build();
  MarkFileNumberUsedLocked(log_number_);

  // Append future edits to a fresh manifest (simpler than appending to the
  // old one, and it compacts the edit history at every open).
  return CreateNewLocked();
}

Status VersionSet::LogAndApply(VersionEdit* edit) {
  return LogAndApply(std::vector<VersionEdit*>{edit});
}

Status VersionSet::LogAndApply(const std::vector<VersionEdit*>& edits) {
  assert(!edits.empty());
  MutexLock lock(&mu_);
  uint64_t new_log_number = log_number_;
  for (VersionEdit* edit : edits) {
    if (edit->has_log_number()) {
      assert(edit->log_number() >= log_number_);
      new_log_number = std::max(new_log_number, edit->log_number());
    }
  }
  // Meta fields go on the last edit: DecodeFrom merges concatenated edits
  // left to right, so the last-written value wins either way — this just
  // avoids encoding them repeatedly.
  VersionEdit* last = edits.back();
  if (!last->has_log_number()) {
    last->SetLogNumber(new_log_number);
  }
  last->SetNextFileNumber(next_file_number_);
  last->SetLastSequence(last_sequence_.load(std::memory_order_acquire));

  VersionSetBuilder builder(options_, icmp_, current_.get());
  for (const VersionEdit* edit : edits) {
    builder.Apply(*edit);
  }
  auto new_version = builder.Build();
  Status s = CheckLevelInvariants(*new_version);
  if (!s.ok()) {
    return s;
  }

  assert(manifest_log_ != nullptr);
  // One record for the whole group: recovery replays it atomically.
  std::string record;
  for (VersionEdit* edit : edits) {
    edit->EncodeTo(&record);
  }
  {
    lock_rank::IoAllowedSection manifest_io(
        "Manifest append+fsync under VersionSet::mu_ is the install "
        "protocol: the write IS the state transition mu_ serializes "
        "(DESIGN.md, Locking discipline).");
    s = manifest_log_->AddRecord(record);
    if (s.ok()) {
      s = manifest_file_->Sync();
    }
  }
  if (!s.ok()) {
    return s;
  }

  // The outgoing version may still be pinned by readers; remember it so
  // AddLiveFiles keeps protecting its files until the last reference drops.
  referenced_versions_.push_back(current_);
  current_ = std::move(new_version);
  log_number_ = new_log_number;
  return Status::OK();
}

Status VersionSet::CheckLevelInvariants(const Version& v) const {
  const Comparator* ucmp = icmp_->user_comparator();
  for (int level = 1; level < v.num_levels(); ++level) {
    if (LevelIsTiered(options_->data_layout, level, options_->num_levels)) {
      continue;  // Tiered levels hold independent, overlapping runs.
    }
    const auto& files = v.files(level);
    for (size_t i = 1; i < files.size(); ++i) {
      if (ucmp->Compare(files[i - 1].largest.user_key(),
                        files[i].smallest.user_key()) >= 0) {
        return Status::Corruption(
            "overlapping files produced at leveled level " +
            std::to_string(level) + ": file " +
            std::to_string(files[i - 1].file_number) + " vs file " +
            std::to_string(files[i].file_number));
      }
    }
  }
  return Status::OK();
}

void VersionSet::AddLiveFiles(std::set<uint64_t>* live) const {
  MutexLock lock(&mu_);
  auto add_version = [&](const Version& v) {
    for (int level = 0; level < v.num_levels(); ++level) {
      for (const auto& f : v.files(level)) {
        live->insert(f.file_number);
      }
    }
  };
  add_version(*current_);
  // Sweep older versions, pruning the ones nobody references anymore.
  auto out = referenced_versions_.begin();
  for (auto& weak : referenced_versions_) {
    if (auto v = weak.lock()) {
      add_version(*v);
      *out++ = std::move(weak);
    }
  }
  referenced_versions_.erase(out, referenced_versions_.end());
}

}  // namespace lsmlab
