#ifndef LSMLAB_VERSION_VERSION_SET_H_
#define LSMLAB_VERSION_VERSION_SET_H_

#include <memory>
#include <string>
#include <vector>

#include "db/dbformat.h"
#include "io/env.h"
#include "io/wal_writer.h"
#include "util/options.h"
#include "version/version_edit.h"

namespace lsmlab {

/// True if level `level` holds multiple independent (possibly overlapping)
/// sorted runs under `layout`; false if its files form one sorted run.
/// This single predicate is where the four disk data layouts of tutorial
/// §2.2.2 differ.
bool LevelIsTiered(DataLayout layout, int level, int num_levels);

/// An immutable snapshot of the tree shape: which files live at which level.
/// Shared by readers, flush, and compaction via shared_ptr; a new Version is
/// installed for every metadata change (MVCC over metadata).
class Version {
 public:
  Version(const Options* options, const InternalKeyComparator* icmp);

  int num_levels() const { return static_cast<int>(files_.size()); }
  const std::vector<FileMetaData>& files(int level) const {
    return files_[level];
  }
  int NumFiles(int level) const {
    return static_cast<int>(files_[level].size());
  }
  uint64_t LevelBytes(int level) const;
  uint64_t TotalBytes() const;
  uint64_t TotalEntries() const;

  /// Number of sorted runs a point lookup may need to probe, totalled over
  /// the tree — the tutorial's read-cost unit.
  int TotalSortedRuns() const;

  /// True if this level's files may overlap one another.
  bool IsTieredLevel(int level) const;

  /// Files of `level` that could contain `user_key`, in probe order (newest
  /// run first for tiered levels; the unique covering file for leveled).
  std::vector<const FileMetaData*> FilesContaining(
      int level, const Slice& user_key) const;

  /// Files of `level` overlapping the user-key range [begin, end]
  /// (inclusive). Null begin/end mean unbounded.
  std::vector<const FileMetaData*> FilesOverlapping(
      int level, const Slice* begin, const Slice* end) const;

  /// One-line-per-level description for logs and examples.
  std::string DebugString() const;

 private:
  friend class VersionSetBuilder;

  const Options* options_;
  const InternalKeyComparator* icmp_;
  std::vector<std::vector<FileMetaData>> files_;
};

/// Owns the version history, the manifest, and the file-number/sequence
/// counters. All methods require the caller (DBImpl) to hold the DB mutex;
/// manifest I/O happens inside LogAndApply with the mutex held, which is
/// acceptable at lsmlab's scale.
class VersionSet {
 public:
  VersionSet(std::string dbname, const Options* options,
             const InternalKeyComparator* icmp);
  ~VersionSet();

  VersionSet(const VersionSet&) = delete;
  VersionSet& operator=(const VersionSet&) = delete;

  /// Applies `edit` to the current version, persists it to the manifest, and
  /// installs the result as current.
  Status LogAndApply(VersionEdit* edit);

  /// Applies several edits as one atomic group: all of them are encoded into
  /// a single manifest record (the tag-based encoding concatenates cleanly),
  /// so recovery sees either all of them or none. Used to stitch the shards
  /// of a subcompaction — and any future multi-job batch — into one
  /// crash-consistent install. Edits are applied in order.
  Status LogAndApply(const std::vector<VersionEdit*>& edits);

  /// Structural check run on every candidate version before it is installed:
  /// leveled levels (> 0) must hold files sorted by smallest key and
  /// pairwise disjoint on user keys. Guards the scheduler's claim that
  /// concurrent, range-disjoint compactions never produce overlapping files.
  Status CheckLevelInvariants(const Version& v) const;

  /// Recovers state from an existing manifest (CURRENT must exist).
  Status Recover();

  /// Initializes a brand-new DB: writes the first manifest and CURRENT.
  Status CreateNew();

  std::shared_ptr<const Version> current() const { return current_; }

  uint64_t NewFileNumber() { return next_file_number_++; }
  uint64_t next_file_number() const { return next_file_number_; }
  /// Re-reserves `number` so recovery never reuses replayed file numbers.
  void MarkFileNumberUsed(uint64_t number);

  SequenceNumber last_sequence() const { return last_sequence_; }
  void SetLastSequence(SequenceNumber s) { last_sequence_ = s; }

  uint64_t log_number() const { return log_number_; }
  void SetLogNumber(uint64_t n) { log_number_ = n; }

  uint64_t manifest_file_number() const { return manifest_file_number_; }

  /// Collects the numbers of all files referenced by the current version or
  /// by any older version still pinned by a reader, iterator, or snapshot
  /// (their files must survive garbage collection until the last reference
  /// drops).
  void AddLiveFiles(std::set<uint64_t>* live) const;

 private:
  Status WriteSnapshot(wal::Writer* writer);
  Env* env() const;

  const std::string dbname_;
  const Options* const options_;
  const InternalKeyComparator* const icmp_;

  std::shared_ptr<const Version> current_;
  /// Weak handles on every version ever installed; expired entries are
  /// pruned on use. Lets AddLiveFiles see versions that readers still hold
  /// after newer versions replaced them (MVCC over metadata).
  mutable std::vector<std::weak_ptr<const Version>> referenced_versions_;
  uint64_t next_file_number_ = 2;
  uint64_t manifest_file_number_ = 0;
  SequenceNumber last_sequence_ = 0;
  uint64_t log_number_ = 0;

  std::unique_ptr<WritableFile> manifest_file_;
  std::unique_ptr<wal::Writer> manifest_log_;
};

}  // namespace lsmlab

#endif  // LSMLAB_VERSION_VERSION_SET_H_
