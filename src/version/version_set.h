#ifndef LSMLAB_VERSION_VERSION_SET_H_
#define LSMLAB_VERSION_VERSION_SET_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "db/dbformat.h"
#include "io/env.h"
#include "io/wal_writer.h"
#include "util/mutex.h"
#include "util/options.h"
#include "util/thread_annotations.h"
#include "version/version_edit.h"

namespace lsmlab {

/// True if level `level` holds multiple independent (possibly overlapping)
/// sorted runs under `layout`; false if its files form one sorted run.
/// This single predicate is where the four disk data layouts of tutorial
/// §2.2.2 differ.
bool LevelIsTiered(DataLayout layout, int level, int num_levels);

/// An immutable snapshot of the tree shape: which files live at which level.
/// Shared by readers, flush, and compaction via shared_ptr; a new Version is
/// installed for every metadata change (MVCC over metadata).
class Version {
 public:
  Version(const Options* options, const InternalKeyComparator* icmp);

  int num_levels() const { return static_cast<int>(files_.size()); }
  const std::vector<FileMetaData>& files(int level) const {
    return files_[level];
  }
  int NumFiles(int level) const {
    return static_cast<int>(files_[level].size());
  }
  uint64_t LevelBytes(int level) const;
  uint64_t TotalBytes() const;
  uint64_t TotalEntries() const;

  /// Number of sorted runs a point lookup may need to probe, totalled over
  /// the tree — the tutorial's read-cost unit.
  int TotalSortedRuns() const;

  /// True if this level's files may overlap one another.
  bool IsTieredLevel(int level) const;

  /// Files of `level` that could contain `user_key`, in probe order (newest
  /// run first for tiered levels; the unique covering file for leveled).
  std::vector<const FileMetaData*> FilesContaining(
      int level, const Slice& user_key) const;

  /// Files of `level` overlapping the user-key range [begin, end]
  /// (inclusive). Null begin/end mean unbounded.
  std::vector<const FileMetaData*> FilesOverlapping(
      int level, const Slice* begin, const Slice* end) const;

  /// One-line-per-level description for logs and examples.
  std::string DebugString() const;

  /// Index-kind census of `level` (DebugLevelSummary's per-level index
  /// line): counts files whose pinned reader carries a learned index vs.
  /// classic fence pointers. Files never opened by this process are
  /// reported as `unopened` — their kind is unknown without I/O, and
  /// introspection must not force table opens.
  void CountIndexKinds(int level, int* learned, int* fence,
                       int* unopened) const;

 private:
  friend class VersionSetBuilder;

  const Options* options_;
  const InternalKeyComparator* icmp_;
  std::vector<std::vector<FileMetaData>> files_;
};

/// Owns the version history, the manifest, and the file-number/sequence
/// counters. Internally synchronized: every field sits behind the leaf
/// mutex `mu_`, so each method is individually safe from any thread.
/// *Compound* invariants (e.g. "allocate a sequence range, then publish it
/// after the WAL write") are still the DB's job — it serializes mutators
/// under its own mutex, which is always acquired before this one (see
/// DESIGN.md, "Locking discipline"). Manifest I/O happens inside
/// LogAndApply with `mu_` held, which is acceptable at lsmlab's scale.
class VersionSet {
 public:
  VersionSet(std::string dbname, const Options* options,
             const InternalKeyComparator* icmp);
  ~VersionSet();

  VersionSet(const VersionSet&) = delete;
  VersionSet& operator=(const VersionSet&) = delete;

  /// Applies `edit` to the current version, persists it to the manifest, and
  /// installs the result as current.
  Status LogAndApply(VersionEdit* edit) EXCLUDES(mu_);

  /// Applies several edits as one atomic group: all of them are encoded into
  /// a single manifest record (the tag-based encoding concatenates cleanly),
  /// so recovery sees either all of them or none. Used to stitch the shards
  /// of a subcompaction — and any future multi-job batch — into one
  /// crash-consistent install. Edits are applied in order.
  Status LogAndApply(const std::vector<VersionEdit*>& edits) EXCLUDES(mu_);

  /// Structural check run on every candidate version before it is installed:
  /// leveled levels (> 0) must hold files sorted by smallest key and
  /// pairwise disjoint on user keys. Guards the scheduler's claim that
  /// concurrent, range-disjoint compactions never produce overlapping files.
  /// Pure function of `v`; touches no guarded state.
  Status CheckLevelInvariants(const Version& v) const;

  /// Recovers state from an existing manifest (CURRENT must exist).
  Status Recover() EXCLUDES(mu_);

  /// Initializes a brand-new DB: writes the first manifest and CURRENT.
  Status CreateNew() EXCLUDES(mu_);

  /// Abandons the current manifest file and starts a fresh one holding a
  /// snapshot of the current version, repointing CURRENT at it. Used by
  /// DB::Resume() after a manifest write failure: the old manifest may end
  /// in a torn record, so appending to it is never safe again; a snapshot
  /// into a new file re-establishes a clean write point. The old manifest
  /// is garbage-collected by the next RemoveObsoleteFiles pass.
  Status RollManifest() EXCLUDES(mu_);

  /// Writes a fresh manifest snapshot of the current version into `dir` (a
  /// checkpoint directory), plus a CURRENT pointing at it — the live
  /// manifest handles are untouched. The caller must have frozen version
  /// installs (the engine holds its own mutex across the checkpoint
  /// capture), so the snapshot, the linked files, and the WAL set it names
  /// describe one consistent instant.
  Status WriteCheckpointManifest(const std::string& dir) EXCLUDES(mu_);

  std::shared_ptr<const Version> current() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return current_;
  }

  uint64_t NewFileNumber() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return next_file_number_++;
  }
  uint64_t next_file_number() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return next_file_number_;
  }
  /// Re-reserves `number` so recovery never reuses replayed file numbers.
  void MarkFileNumberUsed(uint64_t number) EXCLUDES(mu_);

  /// Lock-free: the read path loads this on every Get/iterator snapshot, so
  /// it must not contend with manifest writes. Acquire/release pairing makes
  /// a published sequence imply visibility of the write it covers.
  SequenceNumber last_sequence() const {
    return last_sequence_.load(std::memory_order_acquire);
  }
  void SetLastSequence(SequenceNumber s) {
    last_sequence_.store(s, std::memory_order_release);
  }

  uint64_t log_number() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return log_number_;
  }
  void SetLogNumber(uint64_t n) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    log_number_ = n;
  }

  uint64_t manifest_file_number() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return manifest_file_number_;
  }

  /// Collects the numbers of all files referenced by the current version or
  /// by any older version still pinned by a reader, iterator, or snapshot
  /// (their files must survive garbage collection until the last reference
  /// drops).
  void AddLiveFiles(std::set<uint64_t>* live) const EXCLUDES(mu_);

 private:
  Status WriteSnapshot(wal::Writer* writer) REQUIRES(mu_);
  Status CreateNewLocked() REQUIRES(mu_);
  void MarkFileNumberUsedLocked(uint64_t number) REQUIRES(mu_);
  Env* env() const;

  const std::string dbname_;
  const Options* const options_;
  const InternalKeyComparator* const icmp_;

  /// Leaf lock: held across manifest writes, never while calling out to
  /// any component that takes another lock.
  mutable Mutex mu_{LockRank::kVersionSet, "version_set.mu"};

  std::shared_ptr<const Version> current_ GUARDED_BY(mu_);
  /// Weak handles on every version ever installed; expired entries are
  /// pruned on use. Lets AddLiveFiles see versions that readers still hold
  /// after newer versions replaced them (MVCC over metadata).
  mutable std::vector<std::weak_ptr<const Version>> referenced_versions_
      GUARDED_BY(mu_);
  uint64_t next_file_number_ GUARDED_BY(mu_) = 2;
  uint64_t manifest_file_number_ GUARDED_BY(mu_) = 0;
  std::atomic<SequenceNumber> last_sequence_{0};
  uint64_t log_number_ GUARDED_BY(mu_) = 0;

  std::unique_ptr<WritableFile> manifest_file_ GUARDED_BY(mu_);
  std::unique_ptr<wal::Writer> manifest_log_ GUARDED_BY(mu_);
};

}  // namespace lsmlab

#endif  // LSMLAB_VERSION_VERSION_SET_H_
