#include "workload/workload.h"

#include <cmath>
#include <cstdio>

#include "util/hash.h"

namespace lsmlab {

// ---------------------------------------------------------------------------
// ZipfianGenerator
// ---------------------------------------------------------------------------

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n == 0 ? 1 : n), theta_(theta), rnd_(seed) {
  // Cap the exact zeta computation; beyond the cap, extrapolate with the
  // standard incremental approximation (keeps construction O(1e6)).
  constexpr uint64_t kZetaExactCap = 1000000;
  uint64_t m = std::min(n_, kZetaExactCap);
  zetan_ = Zeta(m, theta_);
  if (n_ > m) {
    // zeta(n) ~ zeta(m) + integral_m^n x^-theta dx.
    zetan_ += (std::pow(static_cast<double>(n_), 1 - theta_) -
               std::pow(static_cast<double>(m), 1 - theta_)) /
              (1 - theta_);
  }
  double zeta2 = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1 - std::pow(2.0 / static_cast<double>(n_), 1 - theta_)) /
         (1 - zeta2 / zetan_);
  threshold_ = 1 + std::pow(0.5, theta_);
}

uint64_t ZipfianGenerator::Next() {
  double u = rnd_.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < threshold_) {
    return 1;
  }
  uint64_t k = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1, alpha_));
  if (k >= n_) {
    k = n_ - 1;
  }
  // Scatter ranks over the key space so "hot" keys are not all adjacent.
  return Hash64(reinterpret_cast<const char*>(&k), sizeof(k), 0x5bd1e995) %
         n_;
}

// ---------------------------------------------------------------------------
// WorkloadSpec presets
// ---------------------------------------------------------------------------

WorkloadSpec WorkloadSpec::WriteOnly(uint64_t n) {
  WorkloadSpec spec;
  spec.num_preloaded_keys = 0;
  spec.num_operations = n;
  return spec;
}

WorkloadSpec WorkloadSpec::YcsbA(uint64_t n) {
  WorkloadSpec spec;
  spec.num_operations = n;
  spec.update_fraction = 0.5;
  spec.read_fraction = 0.5;
  spec.distribution = KeyDistribution::kZipfian;
  return spec;
}

WorkloadSpec WorkloadSpec::YcsbB(uint64_t n) {
  WorkloadSpec spec;
  spec.num_operations = n;
  spec.update_fraction = 0.05;
  spec.read_fraction = 0.95;
  spec.distribution = KeyDistribution::kZipfian;
  return spec;
}

WorkloadSpec WorkloadSpec::YcsbC(uint64_t n) {
  WorkloadSpec spec;
  spec.num_operations = n;
  spec.read_fraction = 1.0;
  spec.distribution = KeyDistribution::kZipfian;
  return spec;
}

WorkloadSpec WorkloadSpec::YcsbE(uint64_t n) {
  WorkloadSpec spec;
  spec.num_operations = n;
  spec.scan_fraction = 0.95;
  spec.distribution = KeyDistribution::kZipfian;
  return spec;
}

// ---------------------------------------------------------------------------
// WorkloadGenerator
// ---------------------------------------------------------------------------

WorkloadGenerator::WorkloadGenerator(const WorkloadSpec& spec)
    : spec_(spec),
      rnd_(spec.seed),
      zipf_(std::max<uint64_t>(1, spec.num_preloaded_keys),
            spec.zipfian_theta, spec.seed ^ 0x9e3779b9),
      next_new_key_(spec.num_preloaded_keys) {}

std::string WorkloadGenerator::FormatKey(uint64_t k) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%016llu",
                static_cast<unsigned long long>(k));
  return std::string(buf);
}

std::string WorkloadGenerator::MakeValue(const Slice& key, size_t size) {
  std::string value;
  value.reserve(size);
  uint64_t h = HashSlice64(key);
  while (value.size() < size) {
    value.push_back(static_cast<char>('a' + (h % 26)));
    h = h * 6364136223846793005ull + 1442695040888963407ull;
  }
  return value;
}

uint64_t WorkloadGenerator::PickExistingKey() {
  uint64_t space = next_new_key_ == 0 ? 1 : next_new_key_;
  switch (spec_.distribution) {
    case KeyDistribution::kUniform:
      return rnd_.Uniform(space);
    case KeyDistribution::kZipfian:
      return zipf_.Next() % space;
    case KeyDistribution::kLatest: {
      // Exponentially biased toward the most recent key.
      uint64_t offset = static_cast<uint64_t>(
          -std::log(1 - rnd_.NextDouble() + 1e-12) * 0.05 *
          static_cast<double>(space));
      return offset >= space ? 0 : space - 1 - offset;
    }
    case KeyDistribution::kSequential:
      return space - 1;
  }
  return 0;
}

Operation WorkloadGenerator::Next() {
  Operation op;
  double dice = rnd_.NextDouble();

  double acc = spec_.update_fraction;
  if (dice < acc && next_new_key_ > 0) {
    op.type = Operation::Type::kUpdate;
    op.key = FormatKey(PickExistingKey());
    op.value_size = spec_.value_size;
    return op;
  }
  acc += spec_.read_fraction;
  if (dice < acc && next_new_key_ > 0) {
    op.type = Operation::Type::kRead;
    op.key = FormatKey(PickExistingKey());
    return op;
  }
  acc += spec_.empty_read_fraction;
  if (dice < acc) {
    op.type = Operation::Type::kEmptyRead;
    // Keys with an "absent" suffix are never inserted, but fall inside the
    // populated key range so only filters can rule them out.
    op.key = FormatKey(rnd_.Uniform(next_new_key_ + 1)) + "!absent";
    return op;
  }
  acc += spec_.scan_fraction;
  if (dice < acc && next_new_key_ > 0) {
    op.type = Operation::Type::kScan;
    op.key = FormatKey(PickExistingKey());
    op.scan_length = spec_.scan_length;
    return op;
  }
  acc += spec_.delete_fraction;
  if (dice < acc && next_new_key_ > 0) {
    op.type = Operation::Type::kDelete;
    op.key = FormatKey(PickExistingKey());
    return op;
  }

  // Remainder: insert a brand-new key (sequential keys insert in order).
  op.type = Operation::Type::kInsert;
  op.key = FormatKey(next_new_key_++);
  op.value_size = spec_.value_size;
  return op;
}

}  // namespace lsmlab
