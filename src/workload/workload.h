#ifndef LSMLAB_WORKLOAD_WORKLOAD_H_
#define LSMLAB_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/slice.h"

namespace lsmlab {

/// Key-access distributions used by the generator. The tutorial's claims
/// depend on mix + skew (Facebook/YCSB-style workloads); these reproduce
/// them synthetically with deterministic seeds.
enum class KeyDistribution {
  kUniform,
  kZipfian,     // Skewed, hot keys spread over the whole key space.
  kLatest,      // Skewed toward recently inserted keys.
  kSequential,  // Monotonically increasing (time-series ingest).
};

/// Draws keys in [0, n) with a Zipf(theta) distribution, using the
/// Gray et al. rejection-free method popularized by YCSB.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta, uint64_t seed);

  uint64_t Next();
  uint64_t n() const { return n_; }

 private:
  static double Zeta(uint64_t n, double theta);

  const uint64_t n_;
  const double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double threshold_;
  Random rnd_;
};

/// One operation of a generated workload.
struct Operation {
  enum class Type : uint8_t {
    kInsert,      // Put of a not-yet-existing key.
    kUpdate,      // Put of an existing key.
    kRead,        // Point lookup of an existing key.
    kEmptyRead,   // Point lookup of an absent key (zero-result lookup).
    kScan,        // Range scan of `scan_length` keys.
    kDelete,      // Point delete of an existing key.
  };

  Type type = Type::kInsert;
  std::string key;
  size_t value_size = 0;
  int scan_length = 0;
};

/// Mix + distribution + sizes of a synthetic workload. Fractions must sum
/// to <= 1; the remainder becomes inserts.
struct WorkloadSpec {
  uint64_t num_preloaded_keys = 10000;  // Keys existing before the run.
  uint64_t num_operations = 100000;

  double update_fraction = 0.0;
  double read_fraction = 0.0;
  double empty_read_fraction = 0.0;
  double scan_fraction = 0.0;
  double delete_fraction = 0.0;

  KeyDistribution distribution = KeyDistribution::kUniform;
  double zipfian_theta = 0.99;

  size_t value_size = 100;
  int scan_length = 50;
  uint64_t seed = 42;

  /// YCSB presets for quick reference in benches.
  static WorkloadSpec WriteOnly(uint64_t n);
  static WorkloadSpec YcsbA(uint64_t n);  // 50% read / 50% update.
  static WorkloadSpec YcsbB(uint64_t n);  // 95% read / 5% update.
  static WorkloadSpec YcsbC(uint64_t n);  // 100% read.
  static WorkloadSpec YcsbE(uint64_t n);  // 95% scan / 5% insert.
};

/// Deterministic stream of operations over a synthetic key space. Keys are
/// fixed-width ("user%016llu") so the bytewise order equals numeric order.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(const WorkloadSpec& spec);

  /// The next operation; valid forever (the key space grows with inserts).
  Operation Next();

  /// Formats key number `k` the same way the generator does.
  static std::string FormatKey(uint64_t k);

  /// Value payload of `size` bytes, deterministic per key.
  std::string MakeValue(const Slice& key, size_t size);

  uint64_t live_keys() const { return next_new_key_; }

 private:
  uint64_t PickExistingKey();

  WorkloadSpec spec_;
  Random rnd_;
  ZipfianGenerator zipf_;
  uint64_t next_new_key_;
};

}  // namespace lsmlab

#endif  // LSMLAB_WORKLOAD_WORKLOAD_H_
