#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "btree/bptree.h"
#include "io/counting_env.h"
#include "io/mem_env.h"
#include "util/random.h"

namespace lsmlab {
namespace {

class BPlusTreeTest : public ::testing::Test {
 protected:
  void Open(size_t cache_pages = 64) {
    BPlusTreeOptions opt;
    opt.cache_pages = cache_pages;
    ASSERT_TRUE(BPlusTree::Open(opt, &env_, "/tree.db", &tree_).ok());
  }

  void Reopen(size_t cache_pages = 64) {
    tree_.reset();
    Open(cache_pages);
  }

  MemEnv env_;
  std::unique_ptr<BPlusTree> tree_;
};

TEST_F(BPlusTreeTest, EmptyTree) {
  Open();
  std::string value;
  EXPECT_TRUE(tree_->Get("missing", &value).IsNotFound());
  EXPECT_EQ(0u, tree_->num_entries());
}

TEST_F(BPlusTreeTest, InsertAndGet) {
  Open();
  ASSERT_TRUE(tree_->Insert("apple", "red").ok());
  ASSERT_TRUE(tree_->Insert("banana", "yellow").ok());
  std::string value;
  ASSERT_TRUE(tree_->Get("apple", &value).ok());
  EXPECT_EQ("red", value);
  ASSERT_TRUE(tree_->Get("banana", &value).ok());
  EXPECT_EQ("yellow", value);
  EXPECT_TRUE(tree_->Get("cherry", &value).IsNotFound());
  EXPECT_EQ(2u, tree_->num_entries());
}

TEST_F(BPlusTreeTest, InPlaceUpdate) {
  Open();
  ASSERT_TRUE(tree_->Insert("k", "v1").ok());
  ASSERT_TRUE(tree_->Insert("k", "v2").ok());
  std::string value;
  ASSERT_TRUE(tree_->Get("k", &value).ok());
  EXPECT_EQ("v2", value);
  EXPECT_EQ(1u, tree_->num_entries());
}

TEST_F(BPlusTreeTest, ManyInsertsWithSplits) {
  Open();
  std::map<std::string, std::string> model;
  Random rnd(301);
  for (int i = 0; i < 5000; ++i) {
    char key[24];
    snprintf(key, sizeof(key), "key%08llu",
             static_cast<unsigned long long>(rnd.Uniform(100000)));
    std::string value = "value" + std::to_string(i);
    model[key] = value;
    ASSERT_TRUE(tree_->Insert(key, value).ok());
  }
  EXPECT_GT(tree_->num_pages(), 10u);  // Splits happened.
  std::string value;
  for (const auto& [key, expected] : model) {
    ASSERT_TRUE(tree_->Get(key, &value).ok()) << key;
    EXPECT_EQ(expected, value);
  }
}

TEST_F(BPlusTreeTest, ScanReturnsSortedRange) {
  Open();
  for (int i = 0; i < 1000; ++i) {
    char key[24];
    snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_TRUE(tree_->Insert(key, std::to_string(i)).ok());
  }
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(tree_->Scan("key000500", 10, &out).ok());
  ASSERT_EQ(10u, out.size());
  for (int i = 0; i < 10; ++i) {
    char key[24];
    snprintf(key, sizeof(key), "key%06d", 500 + i);
    EXPECT_EQ(key, out[static_cast<size_t>(i)].first);
  }
}

TEST_F(BPlusTreeTest, ScanAcrossLeafBoundaries) {
  Open(8);  // Tiny cache forces real page traffic.
  const int kN = 2000;
  for (int i = 0; i < kN; ++i) {
    char key[24];
    snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_TRUE(tree_->Insert(key, "v").ok());
  }
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(tree_->Scan("key000000", kN, &out).ok());
  EXPECT_EQ(static_cast<size_t>(kN), out.size());
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].first, out[i].first);
  }
}

TEST_F(BPlusTreeTest, DeleteHidesKey) {
  Open();
  ASSERT_TRUE(tree_->Insert("k", "v").ok());
  ASSERT_TRUE(tree_->Delete("k").ok());
  std::string value;
  EXPECT_TRUE(tree_->Get("k", &value).IsNotFound());
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(tree_->Scan("", 10, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_F(BPlusTreeTest, PersistsAcrossReopen) {
  Open();
  std::map<std::string, std::string> model;
  for (int i = 0; i < 2000; ++i) {
    char key[24];
    snprintf(key, sizeof(key), "key%06d", i * 7 % 2000);
    model[key] = "value" + std::to_string(i);
    ASSERT_TRUE(tree_->Insert(key, model[key]).ok());
  }
  ASSERT_TRUE(tree_->Flush().ok());
  Reopen();
  std::string value;
  for (const auto& [key, expected] : model) {
    ASSERT_TRUE(tree_->Get(key, &value).ok()) << key;
    EXPECT_EQ(expected, value);
  }
  EXPECT_EQ(model.size(), tree_->num_entries());
}

TEST_F(BPlusTreeTest, TinyCacheStillCorrect) {
  Open(4);
  std::map<std::string, std::string> model;
  Random rnd(17);
  for (int i = 0; i < 3000; ++i) {
    char key[24];
    snprintf(key, sizeof(key), "k%08llu",
             static_cast<unsigned long long>(rnd.Uniform(10000)));
    model[key] = std::to_string(i);
    ASSERT_TRUE(tree_->Insert(key, model[key]).ok());
  }
  std::string value;
  for (const auto& [key, expected] : model) {
    ASSERT_TRUE(tree_->Get(key, &value).ok()) << key;
    EXPECT_EQ(expected, value);
  }
}

TEST_F(BPlusTreeTest, RejectsOversizedEntries) {
  Open();
  std::string huge(3000, 'x');
  EXPECT_TRUE(tree_->Insert("k", huge).IsInvalidArgument());
}

TEST_F(BPlusTreeTest, WriteAmplificationExceedsLsmStyleAppends) {
  // The motivating observation of the whole LSM paradigm (§1): every
  // in-place update costs a page write, so ingesting random keys writes far
  // more bytes than the raw data volume.
  CountingEnv counting(&env_);
  BPlusTreeOptions opt;
  opt.cache_pages = 32;
  std::unique_ptr<BPlusTree> tree;
  ASSERT_TRUE(BPlusTree::Open(opt, &counting, "/wa.db", &tree).ok());

  Random rnd(5);
  uint64_t user_bytes = 0;
  for (int i = 0; i < 2000; ++i) {
    char key[24];
    snprintf(key, sizeof(key), "key%08llu",
             static_cast<unsigned long long>(rnd.Uniform(1000000)));
    std::string value(100, 'v');
    user_bytes += strlen(key) + value.size();
    ASSERT_TRUE(tree->Insert(key, value).ok());
  }
  ASSERT_TRUE(tree->Flush().ok());
  IoStats stats = counting.GetStats();
  // Random in-place inserts should show write amplification far above 2x.
  EXPECT_GT(stats.WriteAmplification(user_bytes), 5.0);
}

}  // namespace
}  // namespace lsmlab
