#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cache/lru_cache.h"

namespace lsmlab {
namespace {

std::shared_ptr<const void> Val(int v) {
  return std::make_shared<int>(v);
}

int Get(const std::shared_ptr<const void>& p) {
  return *static_cast<const int*>(p.get());
}

TEST(LruCacheTest, InsertAndLookup) {
  LruCache cache(1024, 1);
  cache.Insert("a", Val(1), 10);
  auto hit = cache.Lookup("a");
  ASSERT_NE(nullptr, hit);
  EXPECT_EQ(1, Get(hit));
  EXPECT_EQ(nullptr, cache.Lookup("missing"));
}

TEST(LruCacheTest, ReplaceUpdatesValueAndCharge) {
  LruCache cache(1024, 1);
  cache.Insert("a", Val(1), 10);
  cache.Insert("a", Val(2), 20);
  EXPECT_EQ(2, Get(cache.Lookup("a")));
  EXPECT_EQ(20u, cache.usage());
}

TEST(LruCacheTest, EvictsLruWhenOverCapacity) {
  LruCache cache(100, 1);
  cache.Insert("a", Val(1), 40);
  cache.Insert("b", Val(2), 40);
  // Touch "a" so "b" is the LRU entry.
  cache.Lookup("a");
  cache.Insert("c", Val(3), 40);  // Exceeds capacity; evicts "b".
  EXPECT_NE(nullptr, cache.Lookup("a"));
  EXPECT_EQ(nullptr, cache.Lookup("b"));
  EXPECT_NE(nullptr, cache.Lookup("c"));
  EXPECT_LE(cache.usage(), 100u);
}

TEST(LruCacheTest, OversizedEntryIsEvictedImmediately) {
  LruCache cache(100, 1);
  cache.Insert("huge", Val(1), 500);
  EXPECT_EQ(nullptr, cache.Lookup("huge"));
  EXPECT_EQ(0u, cache.usage());
}

TEST(LruCacheTest, EraseRemoves) {
  LruCache cache(1024, 1);
  cache.Insert("a", Val(1), 10);
  cache.Erase("a");
  EXPECT_EQ(nullptr, cache.Lookup("a"));
  EXPECT_EQ(0u, cache.usage());
  cache.Erase("a");  // Erasing a missing key is a no-op.
}

TEST(LruCacheTest, PruneDropsEverything) {
  LruCache cache(1024, 4);
  for (int i = 0; i < 20; ++i) {
    cache.Insert("k" + std::to_string(i), Val(i), 10);
  }
  EXPECT_GT(cache.usage(), 0u);
  cache.Prune();
  EXPECT_EQ(0u, cache.usage());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(nullptr, cache.Lookup("k" + std::to_string(i)));
  }
}

TEST(LruCacheTest, StatsTrackHitsMissesEvictions) {
  LruCache cache(100, 1);
  cache.Insert("a", Val(1), 60);
  cache.Lookup("a");
  cache.Lookup("b");
  cache.Insert("c", Val(2), 60);  // Evicts "a".
  CacheStats stats = cache.GetStats();
  EXPECT_EQ(1u, stats.hits);
  // "b" lookup missed; Lookup on evicted "a" below also misses.
  EXPECT_EQ(nullptr, cache.Lookup("a"));
  stats = cache.GetStats();
  EXPECT_EQ(2u, stats.misses);
  EXPECT_EQ(2u, stats.inserts);
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_NEAR(stats.HitRatio(), 1.0 / 3.0, 1e-9);

  cache.ResetStats();
  stats = cache.GetStats();
  EXPECT_EQ(0u, stats.hits + stats.misses + stats.inserts + stats.evictions);
}

TEST(LruCacheTest, EvictedValueSurvivesWhileHeld) {
  LruCache cache(100, 1);
  cache.Insert("a", Val(42), 80);
  auto held = cache.Lookup("a");
  cache.Insert("b", Val(2), 80);  // Evicts "a".
  EXPECT_EQ(nullptr, cache.Lookup("a"));
  // The shared_ptr keeps the value alive for this reader.
  EXPECT_EQ(42, Get(held));
}

TEST(LruCacheTest, ShardedCacheDistributes) {
  LruCache cache(4000, 8);
  for (int i = 0; i < 100; ++i) {
    cache.Insert("key" + std::to_string(i), Val(i), 10);
  }
  int found = 0;
  for (int i = 0; i < 100; ++i) {
    if (cache.Lookup("key" + std::to_string(i)) != nullptr) {
      ++found;
    }
  }
  // Capacity 4000 over 8 shards = 500/shard; all 100x10-byte entries fit
  // unless hashing is pathologically skewed.
  EXPECT_EQ(100, found);
}

TEST(LruCacheTest, ZeroCapacityHoldsNothing) {
  LruCache cache(0, 1);
  cache.Insert("a", Val(1), 1);
  EXPECT_EQ(nullptr, cache.Lookup("a"));
}

}  // namespace
}  // namespace lsmlab
