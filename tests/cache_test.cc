#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/lru_cache.h"

namespace lsmlab {
namespace {

std::shared_ptr<const void> Val(int v) {
  return std::make_shared<int>(v);
}

int Get(const std::shared_ptr<const void>& p) {
  return *static_cast<const int*>(p.get());
}

TEST(LruCacheTest, InsertAndLookup) {
  LruCache cache(1024, 1);
  cache.Insert("a", Val(1), 10);
  auto hit = cache.Lookup("a");
  ASSERT_NE(nullptr, hit);
  EXPECT_EQ(1, Get(hit));
  EXPECT_EQ(nullptr, cache.Lookup("missing"));
}

TEST(LruCacheTest, ReplaceUpdatesValueAndCharge) {
  LruCache cache(1024, 1);
  cache.Insert("a", Val(1), 10);
  cache.Insert("a", Val(2), 20);
  EXPECT_EQ(2, Get(cache.Lookup("a")));
  EXPECT_EQ(20u, cache.usage());
}

TEST(LruCacheTest, EvictsLruWhenOverCapacity) {
  LruCache cache(100, 1);
  cache.Insert("a", Val(1), 40);
  cache.Insert("b", Val(2), 40);
  // Touch "a" so "b" is the LRU entry.
  cache.Lookup("a");
  cache.Insert("c", Val(3), 40);  // Exceeds capacity; evicts "b".
  EXPECT_NE(nullptr, cache.Lookup("a"));
  EXPECT_EQ(nullptr, cache.Lookup("b"));
  EXPECT_NE(nullptr, cache.Lookup("c"));
  EXPECT_LE(cache.usage(), 100u);
}

TEST(LruCacheTest, OversizedEntryIsEvictedImmediately) {
  LruCache cache(100, 1);
  cache.Insert("huge", Val(1), 500);
  EXPECT_EQ(nullptr, cache.Lookup("huge"));
  EXPECT_EQ(0u, cache.usage());
}

TEST(LruCacheTest, EraseRemoves) {
  LruCache cache(1024, 1);
  cache.Insert("a", Val(1), 10);
  cache.Erase("a");
  EXPECT_EQ(nullptr, cache.Lookup("a"));
  EXPECT_EQ(0u, cache.usage());
  cache.Erase("a");  // Erasing a missing key is a no-op.
}

TEST(LruCacheTest, PruneDropsEverything) {
  LruCache cache(1024, 4);
  for (int i = 0; i < 20; ++i) {
    cache.Insert("k" + std::to_string(i), Val(i), 10);
  }
  EXPECT_GT(cache.usage(), 0u);
  cache.Prune();
  EXPECT_EQ(0u, cache.usage());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(nullptr, cache.Lookup("k" + std::to_string(i)));
  }
}

TEST(LruCacheTest, StatsTrackHitsMissesEvictions) {
  LruCache cache(100, 1);
  cache.Insert("a", Val(1), 60);
  cache.Lookup("a");
  cache.Lookup("b");
  cache.Insert("c", Val(2), 60);  // Evicts "a".
  CacheStats stats = cache.GetStats();
  EXPECT_EQ(1u, stats.hits);
  // "b" lookup missed; Lookup on evicted "a" below also misses.
  EXPECT_EQ(nullptr, cache.Lookup("a"));
  stats = cache.GetStats();
  EXPECT_EQ(2u, stats.misses);
  EXPECT_EQ(2u, stats.inserts);
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_NEAR(stats.HitRatio(), 1.0 / 3.0, 1e-9);

  cache.ResetStats();
  stats = cache.GetStats();
  EXPECT_EQ(0u, stats.hits + stats.misses + stats.inserts + stats.evictions);
}

TEST(LruCacheTest, EvictedValueSurvivesWhileHeld) {
  LruCache cache(100, 1);
  cache.Insert("a", Val(42), 80);
  auto held = cache.Lookup("a");
  cache.Insert("b", Val(2), 80);  // Evicts "a".
  EXPECT_EQ(nullptr, cache.Lookup("a"));
  // The shared_ptr keeps the value alive for this reader.
  EXPECT_EQ(42, Get(held));
}

TEST(LruCacheTest, ShardedCacheDistributes) {
  LruCache cache(4000, 8);
  for (int i = 0; i < 100; ++i) {
    cache.Insert("key" + std::to_string(i), Val(i), 10);
  }
  int found = 0;
  for (int i = 0; i < 100; ++i) {
    if (cache.Lookup("key" + std::to_string(i)) != nullptr) {
      ++found;
    }
  }
  // Capacity 4000 over 8 shards = 500/shard; all 100x10-byte entries fit
  // unless hashing is pathologically skewed.
  EXPECT_EQ(100, found);
}

TEST(LruCacheTest, ZeroCapacityHoldsNothing) {
  LruCache cache(0, 1);
  cache.Insert("a", Val(1), 1);
  EXPECT_EQ(nullptr, cache.Lookup("a"));
}

TEST(LruCacheTest, ShardCountKnob) {
  // Explicit counts are kept (power of two) or rounded up to one.
  EXPECT_EQ(8, LruCache(1024, 8).num_shards());
  EXPECT_EQ(8, LruCache(1024, 5).num_shards());
  EXPECT_EQ(1, LruCache(1024, 1).num_shards());
  // 0 = auto: scaled to hardware concurrency, always a power of two and
  // never below the old hardcoded 4.
  LruCache auto_cache(1024, 0);
  int n = auto_cache.num_shards();
  EXPECT_GE(n, 4);
  EXPECT_LE(n, 64);
  EXPECT_EQ(0, n & (n - 1));
  EXPECT_EQ(n, LruCache::DefaultShardCount());
}

TEST(LruCacheTest, ShardDistributionCoversMultipleShards) {
  LruCache cache(1 << 20, 16);
  constexpr int kEntries = 2000;
  for (int i = 0; i < kEntries; ++i) {
    cache.Insert("spread-key-" + std::to_string(i), Val(i), 10);
  }
  size_t total = 0;
  int populated = 0;
  size_t max_per_shard = 0;
  for (int s = 0; s < cache.num_shards(); ++s) {
    size_t count = cache.ShardEntryCount(s);
    total += count;
    populated += count > 0 ? 1 : 0;
    max_per_shard = std::max(max_per_shard, count);
  }
  EXPECT_EQ(static_cast<size_t>(kEntries), total);
  // The hash must spread entries: every shard populated, and no shard
  // hoards more than 4x its fair share (2000/16 = 125).
  EXPECT_EQ(cache.num_shards(), populated);
  EXPECT_LE(max_per_shard, static_cast<size_t>(4 * kEntries / 16));
}

TEST(LruCacheTest, ConcurrentHitMissAccountingIsExact) {
  LruCache cache(1 << 20, 8);
  constexpr int kKeys = 64;
  for (int i = 0; i < kKeys; ++i) {
    cache.Insert("present" + std::to_string(i), Val(i), 10);
  }
  cache.ResetStats();

  constexpr int kThreads = 4;
  constexpr int kLookupsPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kLookupsPerThread; ++i) {
        if ((i + t) % 2 == 0) {
          // Guaranteed hit: present keys are never evicted (tiny charges).
          EXPECT_NE(nullptr, cache.Lookup("present" + std::to_string(i % kKeys)));
        } else {
          EXPECT_EQ(nullptr, cache.Lookup("absent" + std::to_string(i)));
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }

  // Per-shard counters must not lose updates under contention: totals are
  // exact, not approximate.
  CacheStats stats = cache.GetStats();
  constexpr uint64_t kTotal =
      static_cast<uint64_t>(kThreads) * kLookupsPerThread;
  EXPECT_EQ(kTotal, stats.hits + stats.misses);
  EXPECT_EQ(kTotal / 2, stats.hits);
  EXPECT_EQ(kTotal / 2, stats.misses);
}

}  // namespace
}  // namespace lsmlab
