// Online checkpoint/backup & restore (DESIGN.md, "Checkpoint & restore"),
// hardened under fault injection: consistent cuts under write load, the
// CHECKPOINT completion-record gate, ENOSPC classification, the
// FaultInjectionEnv link/synced-state contract, and the VerifyChecksums
// scrub.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "db/db.h"
#include "db/filename.h"
#include "db/merge_operator.h"
#include "io/fault_injection_env.h"
#include "io/mem_env.h"
#include "util/random.h"

namespace lsmlab {
namespace {

Options SmallDBOptions(Env* env) {
  Options options;
  options.env = env;
  options.write_buffer_size = 2 << 10;
  options.level0_file_num_compaction_trigger = 2;
  options.max_bytes_for_level_base = 8 << 10;
  options.target_file_size = 4 << 10;
  options.merge_operator = NewStringAppendOperator(',');
  options.background_error_retry_initial_micros = 200;
  options.background_error_retry_max_micros = 2000;
  return options;
}

// --- Basic round trip ------------------------------------------------------

TEST(CheckpointTest, RoundTripExcludesPostCutWrites) {
  MemEnv env;
  Options options = SmallDBOptions(&env);

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(db->Put(WriteOptions(), "key" + std::to_string(i),
                        "v" + std::to_string(i))
                    .ok());
  }
  ASSERT_TRUE(db->Delete(WriteOptions(), "key7").ok());
  ASSERT_TRUE(db->Merge(WriteOptions(), "merged", "a").ok());
  ASSERT_TRUE(db->Merge(WriteOptions(), "merged", "b").ok());
  ASSERT_TRUE(db->Flush().ok());  // Some state in tables...
  ASSERT_TRUE(db->Put(WriteOptions(), "inwal", "yes").ok());  // ...some in WAL.

  ASSERT_TRUE(db->Checkpoint("/ckpt").ok());

  // Post-cut writes must not leak into the backup.
  ASSERT_TRUE(db->Put(WriteOptions(), "postcut", "no").ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "key0", "overwritten").ok());

  ASSERT_TRUE(DB::Restore(options, "/ckpt", "/restored").ok());
  std::unique_ptr<DB> restored;
  ASSERT_TRUE(DB::Open(options, "/restored", &restored).ok());

  std::string value;
  ASSERT_TRUE(restored->Get(ReadOptions(), "key0", &value).ok());
  EXPECT_EQ("v0", value);  // The pre-cut value, not the overwrite.
  ASSERT_TRUE(restored->Get(ReadOptions(), "inwal", &value).ok());
  EXPECT_EQ("yes", value);  // WAL-only state survives via the sealed log.
  ASSERT_TRUE(restored->Get(ReadOptions(), "merged", &value).ok());
  EXPECT_EQ("a,b", value);
  EXPECT_TRUE(restored->Get(ReadOptions(), "key7", &value).IsNotFound());
  EXPECT_TRUE(restored->Get(ReadOptions(), "postcut", &value).IsNotFound());
  EXPECT_TRUE(restored->ValidateTreeInvariants().ok());

  // The live DB is untouched by checkpoint + restore.
  ASSERT_TRUE(db->Get(ReadOptions(), "key0", &value).ok());
  EXPECT_EQ("overwritten", value);
  ASSERT_TRUE(db->Get(ReadOptions(), "postcut", &value).ok());
  EXPECT_TRUE(db->ValidateTreeInvariants().ok());

  // The restored DB is fully independent: writes to it never reach the
  // backup or the source.
  ASSERT_TRUE(restored->Put(WriteOptions(), "restonly", "x").ok());
  ASSERT_TRUE(restored->Flush().ok());
  EXPECT_TRUE(db->Get(ReadOptions(), "restonly", &value).IsNotFound());
}

TEST(CheckpointTest, RestoreWithKvSeparationAndSnapshotPinned) {
  MemEnv env;
  Options options = SmallDBOptions(&env);
  options.kv_separation = true;
  options.kv_separation_threshold = 32;

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  const std::string fat(100, 'V');
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        db->Put(WriteOptions(), "key" + std::to_string(i), fat).ok());
  }
  // An outstanding snapshot must not block (or be broken by) a checkpoint.
  SequenceNumber snap = db->GetSnapshot();
  ASSERT_TRUE(db->Checkpoint("/ckpt").ok());
  db->ReleaseSnapshot(snap);

  ASSERT_TRUE(DB::Restore(options, "/ckpt", "/restored").ok());
  std::unique_ptr<DB> restored;
  ASSERT_TRUE(DB::Open(options, "/restored", &restored).ok());
  std::string value;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        restored->Get(ReadOptions(), "key" + std::to_string(i), &value).ok())
        << "key" << i;
    EXPECT_EQ(fat, value);  // Vlog-resident values resolve after restore.
  }
  EXPECT_TRUE(restored->VerifyChecksums().ok());
}

// --- Randomized equivalence sweep (N = 1 and N = 4) ------------------------

void RunEquivalenceSweep(int num_shards, uint64_t seed) {
  Random rng(seed);
  MemEnv env;
  Options options = SmallDBOptions(&env);
  options.num_shards = num_shards;
  if (num_shards > 1) {
    options.shard_split_keys = {"key25", "key50", "key75"};
  }

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());

  std::map<std::string, std::string> model;
  const int total_ops = 200 + static_cast<int>(rng.Uniform(200));
  const int cut = 50 + static_cast<int>(rng.Uniform(total_ops - 50));
  SequenceNumber snap = 0;

  for (int op = 0; op < total_ops; ++op) {
    if (op == cut / 2) {
      snap = db->GetSnapshot();  // Pinned across the checkpoint.
    }
    if (op == cut) {
      ASSERT_TRUE(db->Checkpoint("/ckpt").ok()) << "cut at op " << op;
    }
    char key[8];
    std::snprintf(key, sizeof(key), "key%02d",
                  static_cast<int>(rng.Uniform(100)));
    const uint64_t pick = rng.Uniform(10);
    Status s;
    if (pick < 6) {
      std::string value = "v" + std::to_string(op);
      if (rng.OneIn(6)) {
        value.append(120, 'x');
      }
      s = db->Put(WriteOptions(), key, value);
      if (op < cut) {
        model[key] = value;
      }
    } else if (pick < 8) {
      s = db->Delete(WriteOptions(), key);
      if (op < cut) {
        model.erase(key);
      }
    } else {
      std::string operand = "m" + std::to_string(op);
      s = db->Merge(WriteOptions(), key, operand);
      if (op < cut) {
        auto it = model.find(key);
        if (it == model.end()) {
          model[key] = operand;
        } else {
          it->second += "," + operand;
        }
      }
    }
    ASSERT_TRUE(s.ok()) << "op " << op << ": " << s.ToString();
    if (rng.OneIn(50)) {
      ASSERT_TRUE(db->Flush().ok());
    }
  }
  if (snap != 0) {
    db->ReleaseSnapshot(snap);
  }

  ASSERT_TRUE(DB::Restore(options, "/ckpt", "/restored").ok());
  std::unique_ptr<DB> restored;
  ASSERT_TRUE(DB::Open(options, "/restored", &restored).ok());

  // Exact model equivalence at the cut, key by key and via a full scan.
  std::string value;
  for (int k = 0; k < 100; ++k) {
    char key[8];
    std::snprintf(key, sizeof(key), "key%02d", k);
    Status gs = restored->Get(ReadOptions(), key, &value);
    auto it = model.find(key);
    if (it == model.end()) {
      EXPECT_TRUE(gs.IsNotFound()) << "shards=" << num_shards << " " << key;
    } else {
      ASSERT_TRUE(gs.ok()) << "shards=" << num_shards << " " << key << ": "
                           << gs.ToString();
      EXPECT_EQ(it->second, value) << "shards=" << num_shards << " " << key;
    }
  }
  auto iter = restored->NewIterator(ReadOptions());
  size_t scanned = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    ++scanned;
    auto it = model.find(iter->key().ToString());
    ASSERT_TRUE(it != model.end()) << "phantom key " << iter->key().ToString();
    EXPECT_EQ(it->second, iter->value().ToString());
  }
  EXPECT_EQ(model.size(), scanned) << "shards=" << num_shards;
  EXPECT_TRUE(restored->ValidateTreeInvariants().ok());
  EXPECT_TRUE(restored->VerifyChecksums().ok());
}

TEST(CheckpointTest, RandomizedEquivalenceSingleShard) {
  for (uint64_t seed : {101ull, 202ull, 303ull}) {
    RunEquivalenceSweep(1, seed);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

TEST(CheckpointTest, RandomizedEquivalenceFourShards) {
  for (uint64_t seed : {404ull, 505ull, 606ull}) {
    RunEquivalenceSweep(4, seed);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

// --- Checkpoint under concurrent writers -----------------------------------

// Four writer threads hammer the DB (one per shard range, plus cross-shard
// batches) while a checkpoint is taken mid-load. The restored DB must hold,
// for every writer, a clean prefix of its monotone counter — and the
// cross-shard batch must never be split by the cut: its four keys (one per
// shard) are written atomically with equal values, so the restored copies
// must all be equal. Run under TSan in CI.
TEST(CheckpointTest, ConsistentCutUnderConcurrentWriters) {
  MemEnv env;
  Options options = SmallDBOptions(&env);
  options.num_shards = 4;
  options.shard_split_keys = {"b", "c", "d"};

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());

  std::atomic<bool> stop{false};
  // Per-shard writers: shard k's thread writes a<k>/b<k>/c<k>/d<k> = i.
  std::vector<std::thread> writers;
  const char prefixes[4] = {'a', 'b', 'c', 'd'};
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t]() {
      for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        std::string key(1, prefixes[t]);
        key += "-mono";
        Status s = db->Put(WriteOptions(), key, std::to_string(i));
        if (!s.ok()) {
          ADD_FAILURE() << "writer " << t << ": " << s.ToString();
          return;
        }
      }
    });
  }
  // Cross-shard writer: one atomic batch touching all four shards.
  writers.emplace_back([&]() {
    for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
      WriteBatch batch;
      for (char p : prefixes) {
        batch.Put(std::string(1, p) + "-xs", std::to_string(i));
      }
      Status s = db->Write(WriteOptions(), &batch);
      if (!s.ok()) {
        ADD_FAILURE() << "cross-shard writer: " << s.ToString();
        return;
      }
    }
  });

  // Let the writers get going, then checkpoint mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Status cs = db->Checkpoint("/ckpt");
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers) {
    w.join();
  }
  ASSERT_TRUE(cs.ok()) << cs.ToString();
  ASSERT_TRUE(db->ValidateTreeInvariants().ok());

  ASSERT_TRUE(DB::Restore(options, "/ckpt", "/restored").ok());
  std::unique_ptr<DB> restored;
  ASSERT_TRUE(DB::Open(options, "/restored", &restored).ok());

  // The cross-shard batch is all-or-nothing across the cut.
  std::vector<std::string> xs_values;
  for (char p : prefixes) {
    std::string value;
    Status s = restored->Get(ReadOptions(), std::string(1, p) + "-xs", &value);
    if (s.ok()) {
      xs_values.push_back(value);
    } else {
      ASSERT_TRUE(s.IsNotFound()) << s.ToString();
    }
  }
  ASSERT_TRUE(xs_values.empty() || xs_values.size() == 4u)
      << "cross-shard batch split by the checkpoint cut";
  for (const std::string& v : xs_values) {
    EXPECT_EQ(xs_values[0], v)
        << "cross-shard batch split by the checkpoint cut";
  }
  EXPECT_TRUE(restored->ValidateTreeInvariants().ok());
}

// --- Completion-record gate -------------------------------------------------

TEST(CheckpointTest, TornCheckpointIsRejectedEverywhere) {
  MemEnv base;
  FaultInjectionEnv env(&base, /*seed=*/21);
  Options options = SmallDBOptions(&env);

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db->Put(WriteOptions(), "key" + std::to_string(i),
                        std::string(64, 'v'))
                    .ok());
  }
  ASSERT_TRUE(db->Flush().ok());

  // Persistent: every table link into the checkpoint fails, exhausting
  // LinkFileWithRetry's attempts, so the capture dies after the WAL cut but
  // before the manifest snapshot. (A single scripted failure would be
  // absorbed by the retry loop — see TransientLinkFaultHealsThroughRetry.)
  FaultRule rule;
  rule.file_kinds = kFaultTable;
  rule.ops = kFaultOpLink;
  rule.one_in = 1;
  env.AddRule(rule);
  Status cs = db->Checkpoint("/torn");
  ASSERT_FALSE(cs.ok()) << "scripted link fault must fail the checkpoint";
  env.ClearRules();

  // The directory holds the in-progress marker and no completion record:
  // Restore refuses it, and DB::Open refuses to treat it as a database.
  EXPECT_TRUE(env.FileExists(CheckpointInProgressFileName("/torn")));
  EXPECT_FALSE(env.FileExists(CheckpointMarkerFileName("/torn")));
  Status rs = DB::Restore(options, "/torn", "/never");
  EXPECT_TRUE(rs.IsCorruption()) << rs.ToString();
  std::unique_ptr<DB> never;
  EXPECT_FALSE(DB::Open(options, "/torn", &never).ok())
      << "an interrupted checkpoint must never open as a valid DB";

  // A directory with no markers at all is rejected too.
  EXPECT_TRUE(
      DB::Restore(options, "/nonexistent", "/never2").IsCorruption());

  // The source DB is unharmed and a clean retry into a fresh dir succeeds.
  ASSERT_TRUE(db->Checkpoint("/good").ok());
  ASSERT_TRUE(DB::Restore(options, "/good", "/restored").ok());
  std::unique_ptr<DB> restored;
  ASSERT_TRUE(DB::Open(options, "/restored", &restored).ok());
  std::string value;
  ASSERT_TRUE(restored->Get(ReadOptions(), "key0", &value).ok());
  EXPECT_EQ(std::string(64, 'v'), value);
}

TEST(CheckpointTest, TransientLinkFaultHealsThroughRetry) {
  MemEnv base;
  FaultInjectionEnv env(&base, /*seed=*/22);
  Options options = SmallDBOptions(&env);

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db->Put(WriteOptions(), "key" + std::to_string(i),
                        std::string(64, 'v'))
                    .ok());
  }
  ASSERT_TRUE(db->Flush().ok());

  // Two transient link failures: LinkFileWithRetry's backoff must absorb
  // them and the checkpoint must complete.
  FaultRule rule;
  rule.file_kinds = kFaultTable;
  rule.ops = kFaultOpLink;
  rule.one_in = 1;
  rule.max_failures = 2;
  env.AddRule(rule);
  ASSERT_TRUE(db->Checkpoint("/ckpt").ok());
  EXPECT_GE(env.injected_faults(), 2u);
  env.ClearRules();

  ASSERT_TRUE(DB::Restore(options, "/ckpt", "/restored").ok());
  std::unique_ptr<DB> restored;
  ASSERT_TRUE(DB::Open(options, "/restored", &restored).ok());
  std::string value;
  ASSERT_TRUE(restored->Get(ReadOptions(), "key199", &value).ok());
}

TEST(CheckpointTest, RestoreRefusesOccupiedTarget) {
  MemEnv env;
  Options options = SmallDBOptions(&env);
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "k", "v").ok());
  ASSERT_TRUE(db->Checkpoint("/ckpt").ok());
  // Restoring over a live database directory must refuse, not clobber.
  Status s = DB::Restore(options, "/ckpt", "/db");
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  // And a second checkpoint into the same directory must refuse too.
  EXPECT_TRUE(db->Checkpoint("/ckpt").IsInvalidArgument());
}

// --- FaultInjectionEnv link contract (the satellite fix) --------------------

// A hard link inherits the source's synced prefix: a crash after linking a
// half-synced file rewinds BOTH names to the synced prefix, and a crash
// after linking a fully-synced file loses nothing. Without the FileState
// copy the target would either keep unsynced bytes (phantom durability) or
// be spuriously torn — both corrupt checkpoints.
TEST(CheckpointTest, FaultEnvLinkInheritsSyncedState) {
  MemEnv base;
  FaultInjectionEnv env(&base, /*seed=*/23);

  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile("/src", &file).ok());
  ASSERT_TRUE(file->Append("durable").ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Append("-tail").ok());  // Unsynced.
  ASSERT_TRUE(file->Close().ok());

  ASSERT_TRUE(env.LinkFile("/src", "/linked").ok());
  ASSERT_TRUE(env.DropUnsyncedData().ok());

  std::string contents;
  ASSERT_TRUE(ReadFileToString(&env, "/src", &contents).ok());
  EXPECT_EQ("durable", contents);
  ASSERT_TRUE(ReadFileToString(&env, "/linked", &contents).ok());
  EXPECT_EQ("durable", contents)
      << "linked file must rewind to the source's synced prefix";

  // Linking a file the env never tracked (pre-existing, i.e. fully durable)
  // keeps the target fully durable as well.
  ASSERT_TRUE(WriteStringToFile(&base, "immutable", "/old").ok());
  ASSERT_TRUE(env.LinkFile("/old", "/old-linked").ok());
  ASSERT_TRUE(env.DropUnsyncedData().ok());
  ASSERT_TRUE(ReadFileToString(&env, "/old-linked", &contents).ok());
  EXPECT_EQ("immutable", contents);

  // Contract basics: missing source fails, existing target fails.
  EXPECT_TRUE(env.LinkFile("/missing", "/x").IsNotFound());
  EXPECT_FALSE(env.LinkFile("/old", "/old-linked").ok());
}

// --- ENOSPC classification ---------------------------------------------------

// Disk-full on a flush output is soft: the memtable is untouched, so the
// flush retries with backoff and heals once space frees up — no reopen, no
// Resume().
TEST(CheckpointTest, EnospcOnFlushOutputAutoHeals) {
  MemEnv base;
  FaultInjectionEnv env(&base, /*seed=*/24);
  Options options = SmallDBOptions(&env);

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());

  env.AddRule(FaultRule::NoSpace(kFaultTable, kFaultOpSync,
                                 /*at_op_index=*/0, /*max_failures=*/2));
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db->Put(WriteOptions(), "key" + std::to_string(i),
                        std::string(64, 'v'))
                    .ok());
  }
  ASSERT_TRUE(db->Flush().ok()) << "flush must heal through soft retries";

  const Statistics* stats = db->statistics();
  EXPECT_GE(stats->bg_error_soft.load(), 1u);
  EXPECT_GE(stats->bg_retry_success.load(), 1u);
  EXPECT_EQ(0u, stats->bg_error_hard.load());
  ErrorState state = db->BackgroundErrorState();
  EXPECT_TRUE(state.ok());
  EXPECT_TRUE(IsNoSpaceError(state.first_status))
      << state.first_status.ToString();
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), "key0", &value).ok());
}

// Disk-full on the WAL is hard: the log's on-disk offset is ambiguous, so
// the DB goes read-only until the operator frees space and calls Resume().
TEST(CheckpointTest, EnospcOnWalIsHardUntilResume) {
  MemEnv base;
  FaultInjectionEnv env(&base, /*seed=*/25);
  Options options = SmallDBOptions(&env);

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "before", "v").ok());

  env.AddRule(FaultRule::NoSpace(kFaultWal, kFaultOpAppend,
                                 /*at_op_index=*/0, /*max_failures=*/1));
  Status ws = db->Put(WriteOptions(), "doomed", "v");
  ASSERT_FALSE(ws.ok());
  EXPECT_TRUE(IsNoSpaceError(ws)) << ws.ToString();
  ErrorState state = db->BackgroundErrorState();
  EXPECT_TRUE(state.hard());
  EXPECT_EQ(ErrorSource::kWal, state.source);

  // Read-only until resumed; a checkpoint must refuse too (its WAL cut
  // cannot be trusted under a hard error).
  EXPECT_FALSE(db->Put(WriteOptions(), "still-doomed", "v").ok());
  EXPECT_FALSE(db->Checkpoint("/no-ckpt").ok());

  env.ClearRules();  // "The operator freed disk space."
  ASSERT_TRUE(db->Resume().ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "after", "v").ok());
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), "before", &value).ok());
  ASSERT_TRUE(db->Get(ReadOptions(), "after", &value).ok());
  EXPECT_GE(db->statistics()->bg_error_hard.load(), 1u);
  EXPECT_GE(db->statistics()->resume_calls.load(), 1u);
  EXPECT_TRUE(db->ValidateTreeInvariants().ok());
}

// --- VerifyChecksums scrub ---------------------------------------------------

TEST(CheckpointTest, ScrubCleanThenDetectsCorruption) {
  MemEnv base;
  FaultInjectionEnv env(&base, /*seed=*/26);
  Options options = SmallDBOptions(&env);

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(db->Put(WriteOptions(), "key" + std::to_string(i),
                        std::string(64, 'v'))
                    .ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->WaitForBackgroundWork().ok());

  ASSERT_TRUE(db->VerifyChecksums().ok());
  const Statistics* stats = db->statistics();
  EXPECT_GT(stats->scrub_bytes_verified.load(), 0u);
  EXPECT_EQ(0u, stats->scrub_corruptions.load());
  EXPECT_NE(std::string::npos,
            db->DebugLevelSummary().find("scrub: bytes_verified="));

  // Silent bit rot on table reads: the scrub's verify_checksums walk must
  // catch it and name the file.
  FaultRule rot;
  rot.file_kinds = kFaultTable;
  rot.ops = kFaultOpRead;
  rot.one_in = 1;
  rot.flip_bit = true;
  env.AddRule(rot);
  Status s = db->VerifyChecksums();
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_NE(std::string::npos, s.ToString().find(".sst"))
      << "corruption report must carry file provenance: " << s.ToString();
  EXPECT_GE(stats->scrub_corruptions.load(), 1u);
  env.ClearRules();
  EXPECT_TRUE(db->VerifyChecksums().ok()) << "rot gone, scrub clean again";
}

TEST(CheckpointTest, ScrubCoversVlogs) {
  MemEnv env;
  Options options = SmallDBOptions(&env);
  options.kv_separation = true;
  options.kv_separation_threshold = 32;

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db->Put(WriteOptions(), "key" + std::to_string(i),
                        std::string(100, 'V'))
                    .ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  const uint64_t before = db->statistics()->scrub_bytes_verified.load();
  ASSERT_TRUE(db->VerifyChecksums().ok());
  // Tables AND vlogs counted: verified bytes exceed total sst bytes.
  EXPECT_GT(db->statistics()->scrub_bytes_verified.load() - before,
            db->TotalSstBytes());
}

}  // namespace
}  // namespace lsmlab
