#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "compaction/compaction_picker.h"
#include "db/db.h"
#include "db/merge_operator.h"
#include "io/mem_env.h"
#include "util/random.h"
#include "version/version_set.h"

namespace lsmlab {
namespace {

// ---------------------------------------------------------------------------
// Picker unit tests over hand-built versions.
// ---------------------------------------------------------------------------

class PickerTest : public ::testing::Test {
 protected:
  PickerTest() : icmp_(BytewiseComparator()) {
    options_.num_levels = 5;
    options_.size_ratio = 3;
    options_.level0_file_num_compaction_trigger = 3;
    options_.max_bytes_for_level_base = 1000;
  }

  FileMetaData MakeFile(uint64_t number, const std::string& smallest,
                        const std::string& largest, uint64_t size = 500,
                        uint64_t tombstones = 0,
                        uint64_t tombstone_age_start = 0) {
    FileMetaData f;
    f.file_number = number;
    f.file_size = size;
    f.smallest = InternalKey(smallest, 100, kTypeValue);
    f.largest = InternalKey(largest, 1, kTypeValue);
    f.num_entries = 10;
    f.num_tombstones = tombstones;
    f.creation_time_micros = number;
    f.oldest_tombstone_time_micros = tombstone_age_start;
    return f;
  }

  /// Builds a Version from (level, file) pairs via the edit/builder path.
  std::shared_ptr<const Version> MakeVersion(
      const std::vector<std::pair<int, FileMetaData>>& files) {
    versions_ =
        std::make_unique<VersionSet>("/picker", &options_, &icmp_);
    // Apply through a private builder path: reuse VersionSet recovery
    // machinery by going through LogAndApply on a fresh DB would need a
    // manifest; instead construct directly via a VersionEdit on CreateNew.
    env_ = std::make_unique<MemEnv>();
    options_.env = env_.get();
    versions_ =
        std::make_unique<VersionSet>("/picker", &options_, &icmp_);
    EXPECT_TRUE(env_->CreateDir("/picker").ok());
    EXPECT_TRUE(versions_->CreateNew().ok());
    VersionEdit edit;
    for (const auto& [level, f] : files) {
      edit.AddFile(level, f);
    }
    EXPECT_TRUE(versions_->LogAndApply(&edit).ok());
    return versions_->current();
  }

  Options options_;
  InternalKeyComparator icmp_;
  std::unique_ptr<MemEnv> env_;
  std::unique_ptr<VersionSet> versions_;
};

TEST_F(PickerTest, NoWorkOnEmptyTree) {
  auto version = MakeVersion({});
  CompactionPicker picker(&options_);
  EXPECT_FALSE(picker.Pick(*version, 0).has_value());
}

TEST_F(PickerTest, NoWorkBelowTriggers) {
  auto version = MakeVersion({
      {0, MakeFile(10, "a", "m")},
      {0, MakeFile(11, "b", "z")},
  });
  CompactionPicker picker(&options_);
  // Two L0 files < trigger of 3.
  EXPECT_FALSE(picker.Pick(*version, 0).has_value());
}

TEST_F(PickerTest, L0TriggerFiresWithAllRuns) {
  options_.data_layout = DataLayout::kOneLeveling;
  auto version = MakeVersion({
      {0, MakeFile(10, "a", "m")},
      {0, MakeFile(11, "b", "z")},
      {0, MakeFile(12, "c", "q")},
      {1, MakeFile(5, "a", "j", 400)},
      {1, MakeFile(6, "k", "z", 400)},
  });
  CompactionPicker picker(&options_);
  auto job = picker.Pick(*version, 0);
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(CompactionTrigger::kRunCount, job->trigger);
  EXPECT_EQ(0, job->input_level);
  EXPECT_EQ(1, job->output_level);
  EXPECT_EQ(3u, job->inputs.size());   // All L0 runs.
  EXPECT_EQ(2u, job->overlap.size());  // Both overlapping L1 files.
  // L2+ are empty, so the merge may drop tombstones.
  EXPECT_TRUE(job->bottommost);
}

TEST_F(PickerTest, LeveledSizeTriggerPicksOneFileUnderPartial) {
  options_.data_layout = DataLayout::kOneLeveling;
  options_.compaction_granularity = CompactionGranularity::kPartial;
  options_.file_pick_policy = FilePickPolicy::kLeastOverlap;
  // L1 over capacity (1500 > 1000); file 21 has no L2 overlap, file 22 has.
  auto version = MakeVersion({
      {1, MakeFile(21, "a", "c", 800)},
      {1, MakeFile(22, "d", "j", 700)},
      {2, MakeFile(15, "d", "k", 500)},
  });
  CompactionPicker picker(&options_);
  auto job = picker.Pick(*version, 0);
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(CompactionTrigger::kLevelSize, job->trigger);
  EXPECT_EQ(1, job->input_level);
  ASSERT_EQ(1u, job->inputs.size());
  EXPECT_EQ(21u, job->inputs[0].file_number)
      << "least-overlap must pick the file without L2 overlap";
  EXPECT_TRUE(job->overlap.empty());
}

TEST_F(PickerTest, MostTombstonesPolicyPicksDensestFile) {
  options_.data_layout = DataLayout::kOneLeveling;
  options_.compaction_granularity = CompactionGranularity::kPartial;
  options_.file_pick_policy = FilePickPolicy::kMostTombstones;
  auto version = MakeVersion({
      {1, MakeFile(21, "a", "c", 800, /*tombstones=*/0)},
      {1, MakeFile(22, "d", "j", 700, /*tombstones=*/8, 1)},
  });
  CompactionPicker picker(&options_);
  auto job = picker.Pick(*version, 0);
  ASSERT_TRUE(job.has_value());
  ASSERT_EQ(1u, job->inputs.size());
  EXPECT_EQ(22u, job->inputs[0].file_number);
}

TEST_F(PickerTest, WholeLevelTakesEverything) {
  options_.data_layout = DataLayout::kOneLeveling;
  options_.compaction_granularity = CompactionGranularity::kWholeLevel;
  auto version = MakeVersion({
      {1, MakeFile(21, "a", "c", 800)},
      {1, MakeFile(22, "d", "j", 700)},
  });
  CompactionPicker picker(&options_);
  auto job = picker.Pick(*version, 0);
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(2u, job->inputs.size());
}

TEST_F(PickerTest, FadeTtlOverridesSizeTriggers) {
  options_.data_layout = DataLayout::kOneLeveling;
  options_.tombstone_ttl_micros = 1000;
  // A small file with an overdue tombstone; level is way under capacity.
  auto version = MakeVersion({
      {1, MakeFile(21, "a", "c", 10, /*tombstones=*/2,
                   /*tombstone_age_start=*/500)},
  });
  CompactionPicker picker(&options_);
  // Before the TTL elapses: nothing to do.
  EXPECT_FALSE(picker.Pick(*version, 600).has_value());
  // After: the TTL job fires even though no size trigger is close.
  auto job = picker.Pick(*version, 2000);
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(CompactionTrigger::kTombstoneTtl, job->trigger);
  ASSERT_EQ(1u, job->inputs.size());
  EXPECT_EQ(21u, job->inputs[0].file_number);
}

TEST_F(PickerTest, TieredTargetStacksWithoutOverlap) {
  options_.data_layout = DataLayout::kTiering;
  options_.size_ratio = 3;
  auto version = MakeVersion({
      {0, MakeFile(10, "a", "m")},
      {0, MakeFile(11, "b", "z")},
      {0, MakeFile(12, "c", "q")},
      {1, MakeFile(5, "a", "z", 400)},  // Existing L1 run.
  });
  CompactionPicker picker(&options_);
  auto job = picker.Pick(*version, 0);
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(1, job->output_level);
  EXPECT_TRUE(job->overlap.empty())
      << "tiered targets stack a fresh run; no overlap merge";
  EXPECT_FALSE(job->bottommost)
      << "sibling run at the target level may hold older versions";
}

TEST_F(PickerTest, LastLevelTieringMergesInPlace) {
  options_.data_layout = DataLayout::kTiering;
  options_.num_levels = 3;
  auto version = MakeVersion({
      {2, MakeFile(30, "a", "m", 400)},
      {2, MakeFile(31, "b", "z", 400)},
      {2, MakeFile(32, "c", "q", 400)},
  });
  CompactionPicker picker(&options_);
  auto job = picker.Pick(*version, 0);
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(2, job->input_level);
  EXPECT_EQ(2, job->output_level);
  EXPECT_EQ(3u, job->inputs.size());
  EXPECT_TRUE(job->bottommost);
}

TEST_F(PickerTest, ScoreGrowsWithPressure) {
  options_.data_layout = DataLayout::kOneLeveling;
  auto version = MakeVersion({
      {1, MakeFile(21, "a", "c", 500)},
      {1, MakeFile(22, "d", "j", 1500)},
  });
  CompactionPicker picker(&options_);
  EXPECT_GE(picker.Score(*version, 1), 2.0);  // 2000 bytes vs 1000 cap.
  EXPECT_EQ(0.0, picker.Score(*version, 2));
}

TEST_F(PickerTest, ManualCompactionCoversLevel) {
  options_.data_layout = DataLayout::kOneLeveling;
  auto version = MakeVersion({
      {1, MakeFile(21, "a", "c", 100)},
      {1, MakeFile(22, "d", "j", 100)},
  });
  CompactionPicker picker(&options_);
  auto job = picker.PickManual(*version, 1);
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(CompactionTrigger::kManual, job->trigger);
  EXPECT_EQ(2u, job->inputs.size());
  EXPECT_FALSE(picker.PickManual(*version, 3).has_value());
}

// ---------------------------------------------------------------------------
// Conflict-aware picking: the admission rules the parallel scheduler
// relies on to keep concurrent compactions disjoint.
// ---------------------------------------------------------------------------

TEST_F(PickerTest, BusyInputFileBlocksWholeLevelPlan) {
  options_.data_layout = DataLayout::kOneLeveling;
  auto version = MakeVersion({
      {0, MakeFile(10, "a", "m")},
      {0, MakeFile(11, "b", "z")},
      {0, MakeFile(12, "c", "q")},
  });
  CompactionPicker picker(&options_);
  ASSERT_TRUE(picker.Pick(*version, 0).has_value());

  // An L0 merge needs every run; one busy file blocks the whole plan.
  std::set<uint64_t> busy = {11};
  PickContext ctx;
  ctx.busy_files = &busy;
  EXPECT_FALSE(picker.Pick(*version, 0, ctx).has_value());
}

TEST_F(PickerTest, BusyFileSkippedUnderPartialGranularity) {
  options_.data_layout = DataLayout::kOneLeveling;
  options_.compaction_granularity = CompactionGranularity::kPartial;
  options_.file_pick_policy = FilePickPolicy::kOldestFirst;
  auto version = MakeVersion({
      {1, MakeFile(21, "a", "c", 800)},
      {1, MakeFile(22, "d", "j", 700)},
  });
  CompactionPicker picker(&options_);

  // Partial granularity can route around a busy candidate: with file 21
  // (the oldest) busy, the picker falls back to file 22.
  std::set<uint64_t> busy = {21};
  PickContext ctx;
  ctx.busy_files = &busy;
  auto plan = picker.Pick(*version, 0, ctx);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(1u, plan->inputs.size());
  EXPECT_EQ(22u, plan->inputs[0].file_number);

  // Both busy: nothing admissible.
  busy.insert(22);
  EXPECT_FALSE(picker.Pick(*version, 0, ctx).has_value());
}

TEST_F(PickerTest, ClaimedRangeRejectsOverlappingPlan) {
  options_.data_layout = DataLayout::kOneLeveling;
  options_.compaction_granularity = CompactionGranularity::kPartial;
  options_.file_pick_policy = FilePickPolicy::kOldestFirst;
  auto version = MakeVersion({
      {1, MakeFile(21, "a", "c", 800)},
      {1, MakeFile(22, "d", "j", 700)},
  });
  CompactionPicker picker(&options_);

  // A running job claims [a, e] at the output level 2. File 21's plan
  // ([a, c] -> L2) intersects it even though no *file* is shared — this is
  // exactly the two-overlapping-jobs-into-empty-level hazard. File 22's
  // hull [d, j] also intersects [a, e], so nothing at L1 is admissible.
  std::vector<ClaimedRange> claims = {{2, "a", "e"}};
  PickContext ctx;
  ctx.claimed = &claims;
  auto plan = picker.Pick(*version, 0, ctx);
  EXPECT_FALSE(plan.has_value());

  // Shrink the claim to [a, c]: file 22 ([d, j]) becomes admissible.
  claims[0].largest = "c";
  plan = picker.Pick(*version, 0, ctx);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(1u, plan->inputs.size());
  EXPECT_EQ(22u, plan->inputs[0].file_number);

  // A claim at an unrelated level does not block anything.
  claims[0] = {4, "a", "z"};
  EXPECT_TRUE(picker.Pick(*version, 0, ctx).has_value());
}

TEST_F(PickerTest, DeepRunningJobSuppressesBottommost) {
  options_.data_layout = DataLayout::kOneLeveling;
  options_.num_levels = 3;
  auto version = MakeVersion({
      {1, MakeFile(21, "a", "c", 800)},
      {1, MakeFile(22, "d", "j", 700)},
  });
  CompactionPicker picker(&options_);
  auto plan = picker.Pick(*version, 0);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(2, plan->output_level);
  EXPECT_TRUE(plan->bottommost) << "L2 is the deepest data: tombstones drop";

  // With a sibling job running at output level 2 (disjoint range, so the
  // plan is otherwise admissible), bottommost must be conservative: that
  // job may be writing older versions of keys this merge would drop.
  std::vector<ClaimedRange> claims = {{2, "x", "z"}};
  PickContext ctx;
  ctx.claimed = &claims;
  ctx.deepest_running_output = 2;
  plan = picker.Pick(*version, 0, ctx);
  ASSERT_TRUE(plan.has_value());
  EXPECT_FALSE(plan->bottommost);
}

TEST_F(PickerTest, PlanKeyRangeIsInputOverlapHull) {
  options_.data_layout = DataLayout::kOneLeveling;
  auto version = MakeVersion({
      {0, MakeFile(10, "d", "m")},
      {0, MakeFile(11, "f", "p")},
      {0, MakeFile(12, "c", "q")},
      {1, MakeFile(5, "a", "j", 400)},
      {1, MakeFile(6, "k", "z", 400)},
  });
  CompactionPicker picker(&options_);
  auto plan = picker.Pick(*version, 0);
  ASSERT_TRUE(plan.has_value());
  std::string smallest, largest;
  plan->KeyRange(&smallest, &largest);
  EXPECT_EQ("a", smallest) << "hull must include the overlap files";
  EXPECT_EQ("z", largest);
}

// ---------------------------------------------------------------------------
// Subcompaction splitting: a sharded merge must produce the same logical
// contents as an unsharded one.
// ---------------------------------------------------------------------------

TEST(SubcompactionTest, ShardedMergeMatchesUnsharded) {
  auto fill_and_dump = [](int subcompactions, int threads,
                          uint64_t* shards_run) {
    MemEnv env;
    Options options;
    options.env = &env;
    options.data_layout = DataLayout::kOneLeveling;
    options.write_buffer_size = 4 << 10;
    options.max_bytes_for_level_base = 32 << 10;
    options.target_file_size = 4 << 10;
    options.background_threads = threads;
    options.max_subcompactions = subcompactions;
    std::unique_ptr<DB> db;
    EXPECT_TRUE(DB::Open(options, "/sub", &db).ok());

    Random rnd(77);
    for (int i = 0; i < 6000; ++i) {
      std::string key = "key" + std::to_string(rnd.Uniform(900));
      if (rnd.OneIn(7)) {
        EXPECT_TRUE(db->Delete(WriteOptions(), key).ok());
      } else {
        EXPECT_TRUE(
            db->Put(WriteOptions(), key, "v" + std::to_string(i)).ok());
      }
    }
    EXPECT_TRUE(db->WaitForBackgroundWork().ok());
    EXPECT_TRUE(db->CompactRange().ok());
    Status s = db->ValidateTreeInvariants();
    EXPECT_TRUE(s.ok()) << s.ToString();

    std::string dump;
    auto iter = db->NewIterator(ReadOptions());
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      dump += iter->key().ToString() + "=" + iter->value().ToString() + ";";
    }
    *shards_run = db->statistics()->subcompactions.load();
    return dump;
  };

  uint64_t unsharded_shards = 0, sharded_shards = 0;
  std::string unsharded = fill_and_dump(1, 1, &unsharded_shards);
  std::string sharded = fill_and_dump(4, 4, &sharded_shards);
  EXPECT_EQ(unsharded, sharded);
  EXPECT_FALSE(sharded.empty());
  EXPECT_EQ(0u, unsharded_shards)
      << "max_subcompactions=1 must never split";
  EXPECT_GT(sharded_shards, 0u)
      << "large leveled merges should have been sharded";
}

// ---------------------------------------------------------------------------
// LevelIsTiered: the layout predicate.
// ---------------------------------------------------------------------------

TEST(LayoutPredicateTest, MatchesDefinitions) {
  const int kL = 5;
  // Leveling: nothing tiered.
  for (int i = 0; i < kL; ++i) {
    EXPECT_FALSE(LevelIsTiered(DataLayout::kLeveling, i, kL));
  }
  // Tiering: everything tiered.
  for (int i = 0; i < kL; ++i) {
    EXPECT_TRUE(LevelIsTiered(DataLayout::kTiering, i, kL));
  }
  // Lazy-leveling: all but the last.
  for (int i = 0; i < kL - 1; ++i) {
    EXPECT_TRUE(LevelIsTiered(DataLayout::kLazyLeveling, i, kL));
  }
  EXPECT_FALSE(LevelIsTiered(DataLayout::kLazyLeveling, kL - 1, kL));
  // 1-leveling: only L0.
  EXPECT_TRUE(LevelIsTiered(DataLayout::kOneLeveling, 0, kL));
  for (int i = 1; i < kL; ++i) {
    EXPECT_FALSE(LevelIsTiered(DataLayout::kOneLeveling, i, kL));
  }
}

// ---------------------------------------------------------------------------
// End-to-end tree invariants under every layout.
// ---------------------------------------------------------------------------

class TreeInvariantTest : public ::testing::TestWithParam<DataLayout> {};

TEST_P(TreeInvariantTest, HoldAfterHeavyChurn) {
  MemEnv env;
  Options options;
  options.env = &env;
  options.data_layout = GetParam();
  options.write_buffer_size = 4 << 10;
  options.max_bytes_for_level_base = 32 << 10;
  options.target_file_size = 8 << 10;
  options.size_ratio = 3;
  if (GetParam() == DataLayout::kLeveling) {
    options.level0_file_num_compaction_trigger = 1;
  }
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/inv", &db).ok());

  Random rnd(23);
  for (int i = 0; i < 8000; ++i) {
    std::string key = "key" + std::to_string(rnd.Uniform(700));
    if (rnd.OneIn(8)) {
      ASSERT_TRUE(db->Delete(WriteOptions(), key).ok());
    } else {
      ASSERT_TRUE(db->Put(WriteOptions(), key, std::string(48, 'v')).ok());
    }
    if (i % 2000 == 1999) {
      ASSERT_TRUE(db->WaitForBackgroundWork().ok());
      Status s = db->ValidateTreeInvariants();
      ASSERT_TRUE(s.ok()) << s.ToString() << "\n" << db->LevelsDebugString();
    }
  }
  ASSERT_TRUE(db->CompactRange().ok());
  Status s = db->ValidateTreeInvariants();
  ASSERT_TRUE(s.ok()) << s.ToString();
}

// ---------------------------------------------------------------------------
// Output-file cutting must respect user-key boundaries. A hot merge key
// accumulates an operand run far larger than target_file_size; if the merge
// loop cut outputs purely on size it would split that run across two leveled
// files sharing the boundary user key, which violates the disjoint-range
// invariant and makes Get stop at the first file and miss the rest.
// Regression test: pre-fix this fails WaitForBackgroundWork with
// "Corruption: overlapping files produced at leveled level 1".
// ---------------------------------------------------------------------------

TEST(CompactionOutputCutTest, OutputFilesNeverSplitAUserKey) {
  MemEnv env;
  Options options;
  options.env = &env;
  options.data_layout = DataLayout::kOneLeveling;
  options.write_buffer_size = 4 << 10;
  options.level0_file_num_compaction_trigger = 2;
  options.max_bytes_for_level_base = 16 << 10;
  options.target_file_size = 4 << 10;  // Far below the hot key's operand run.
  options.background_threads = 2;
  options.merge_operator = NewStringAppendOperator(',');
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/cut", &db).ok());

  // Flank the hot key so output files have real ranges on both sides.
  const std::string filler(100, 'v');
  for (int i = 0; i < 20; ++i) {
    char before[8], after[8];
    std::snprintf(before, sizeof(before), "a%02d", i);
    std::snprintf(after, sizeof(after), "z%02d", i);
    ASSERT_TRUE(db->Put(WriteOptions(), before, filler).ok());
    ASSERT_TRUE(db->Put(WriteOptions(), after, filler).ok());
  }

  // ~40KB of merge operands on one user key: any size-based cut inside the
  // run would split "hot" across adjacent leveled files.
  const int kOperands = 400;
  const std::string operand(100, 'm');
  std::string expected;
  for (int i = 0; i < kOperands; ++i) {
    ASSERT_TRUE(db->Merge(WriteOptions(), "hot", operand).ok());
    if (!expected.empty()) {
      expected += ',';
    }
    expected += operand;
  }

  Status s = db->WaitForBackgroundWork();
  ASSERT_TRUE(s.ok()) << s.ToString();
  s = db->CompactRange();
  ASSERT_TRUE(s.ok()) << s.ToString();
  s = db->ValidateTreeInvariants();
  ASSERT_TRUE(s.ok()) << s.ToString() << "\n" << db->LevelsDebugString();

  std::string got;
  ASSERT_TRUE(db->Get(ReadOptions(), "hot", &got).ok());
  EXPECT_EQ(expected, got);
  EXPECT_TRUE(db->BackgroundErrorState().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, TreeInvariantTest,
    ::testing::Values(DataLayout::kLeveling, DataLayout::kTiering,
                      DataLayout::kLazyLeveling, DataLayout::kOneLeveling),
    [](const ::testing::TestParamInfo<DataLayout>& info) {
      switch (info.param) {
        case DataLayout::kLeveling:
          return "Leveling";
        case DataLayout::kTiering:
          return "Tiering";
        case DataLayout::kLazyLeveling:
          return "LazyLeveling";
        case DataLayout::kOneLeveling:
          return "OneLeveling";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace lsmlab
