// Concurrency stress: readers, scanners, and snapshot holders running
// against a writer while flushes and compactions churn in the background.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "db/db.h"
#include "io/fault_injection_env.h"
#include "io/latency_env.h"
#include "io/mem_env.h"
#include "kvsep/vlog.h"
#include "util/random.h"

namespace lsmlab {
namespace {

class ConcurrencyTest : public ::testing::Test {
 protected:
  ConcurrencyTest() {
    options_.env = &env_;
    options_.write_buffer_size = 8 << 10;
    options_.max_bytes_for_level_base = 64 << 10;
    options_.background_threads = 2;
    options_.filter_policy = NewBloomFilterPolicy(10);
  }

  MemEnv env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(ConcurrencyTest, ReadersDuringWrites) {
  ASSERT_TRUE(DB::Open(options_, "/conc", &db_).ok());

  constexpr int kKeySpace = 500;
  constexpr int kWrites = 20000;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> read_errors{0};
  std::atomic<uint64_t> reads_done{0};

  // Writer: monotone values per key so readers can check freshness order.
  std::thread writer([&] {
    Random rnd(1);
    for (int i = 0; i < kWrites; ++i) {
      std::string key = "key" + std::to_string(rnd.Uniform(kKeySpace));
      // Value encodes the write index, zero-padded so bytewise order works.
      char value[16];
      snprintf(value, sizeof(value), "%010d", i);
      Status s = db_->Put(WriteOptions(), key, value);
      if (!s.ok()) {
        ++read_errors;
        break;
      }
    }
    done.store(true);
  });

  // Readers: every Get must return OK or NotFound — never corruption.
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Random rnd(static_cast<uint64_t>(r) + 100);
      std::string value;
      while (!done.load()) {
        std::string key = "key" + std::to_string(rnd.Uniform(kKeySpace));
        Status s = db_->Get(ReadOptions(), key, &value);
        if (!s.ok() && !s.IsNotFound()) {
          ++read_errors;
        }
        ++reads_done;
      }
    });
  }

  // Scanner: iterators must always see a sorted, consistent view.
  std::thread scanner([&] {
    while (!done.load()) {
      auto iter = db_->NewIterator(ReadOptions());
      std::string prev;
      for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
        std::string key = iter->key().ToString();
        if (!prev.empty() && !(prev < key)) {
          ++read_errors;
          break;
        }
        prev = key;
      }
      if (!iter->status().ok()) {
        ++read_errors;
      }
    }
  });

  writer.join();
  for (auto& t : readers) {
    t.join();
  }
  scanner.join();

  EXPECT_EQ(0u, read_errors.load());
  EXPECT_GT(reads_done.load(), 0u);
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());
  EXPECT_TRUE(db_->ValidateTreeInvariants().ok());
  EXPECT_EQ(static_cast<uint64_t>(kKeySpace), db_->CountLiveEntries());
}

TEST_F(ConcurrencyTest, SnapshotIsolationUnderChurn) {
  ASSERT_TRUE(DB::Open(options_, "/conc2", &db_).ok());

  // Freeze a snapshot, then overwrite everything repeatedly; the snapshot
  // view must stay bit-identical even across flush/compaction churn.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "key" + std::to_string(i),
                         "generation-0")
                    .ok());
  }
  SequenceNumber snap = db_->GetSnapshot();

  std::atomic<bool> done{false};
  std::atomic<uint64_t> violations{0};
  std::thread checker([&] {
    ReadOptions at_snap;
    at_snap.snapshot_seqno = snap;
    Random rnd(7);
    std::string value;
    while (!done.load()) {
      std::string key = "key" + std::to_string(rnd.Uniform(200));
      Status s = db_->Get(at_snap, key, &value);
      if (!s.ok() || value != "generation-0") {
        ++violations;
      }
    }
  });

  for (int gen = 1; gen <= 10; ++gen) {
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(db_->Put(WriteOptions(), "key" + std::to_string(i),
                           "generation-" + std::to_string(gen))
                      .ok());
    }
    ASSERT_TRUE(db_->Flush().ok());
  }
  done.store(true);
  checker.join();

  EXPECT_EQ(0u, violations.load());
  db_->ReleaseSnapshot(snap);

  // After release, a full compaction may reclaim the old generations.
  ASSERT_TRUE(db_->CompactRange().ok());
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "key0", &value).ok());
  EXPECT_EQ("generation-10", value);
}

// The ReadView swap (memtable seal + flush install) must never be visible
// to a racing Get as a torn state: a key that was durably written stays
// readable through every view republication.
TEST_F(ConcurrencyTest, GetNeverMissesCommittedKeysDuringFlushChurn) {
  ASSERT_TRUE(DB::Open(options_, "/conc-view1", &db_).ok());

  constexpr int kKeys = 400;
  std::atomic<int> committed{-1};  // Highest key index durably written.
  std::atomic<bool> done{false};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> errors{0};

  // Readers hammer the committed prefix: every key <= committed must be
  // found, whether it currently lives in the active memtable, a sealed
  // immutable, or a freshly installed L0/Ln file.
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Random rnd(static_cast<uint64_t>(r) + 77);
      std::string value;
      while (!done.load()) {
        int limit = committed.load(std::memory_order_acquire);
        if (limit < 0) {
          continue;
        }
        int i = static_cast<int>(rnd.Uniform(static_cast<uint32_t>(limit + 1)));
        Status s = db_->Get(ReadOptions(), "vk" + std::to_string(i), &value);
        if (s.IsNotFound()) {
          ++misses;
        } else if (!s.ok()) {
          ++errors;
        }
      }
    });
  }

  // Writer forces a view republication (memtable seal + flush install) on
  // every batch via explicit Flush.
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "vk" + std::to_string(i),
                         "payload-" + std::to_string(i))
                    .ok());
    committed.store(i, std::memory_order_release);
    if (i % 40 == 39) {
      ASSERT_TRUE(db_->Flush().ok());
    }
  }
  done.store(true);
  for (auto& t : readers) {
    t.join();
  }

  EXPECT_EQ(0u, misses.load());
  EXPECT_EQ(0u, errors.load());
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());
  EXPECT_EQ(static_cast<uint64_t>(kKeys), db_->CountLiveEntries());
}

// MultiGet acquires one view per batch; compactions republishing the view
// mid-stream must never tear a batch (every key resolves against one
// consistent state) or break per-key agreement with Get.
TEST_F(ConcurrencyTest, MultiGetConsistentUnderCompactionChurn) {
  ASSERT_TRUE(DB::Open(options_, "/conc-view2", &db_).ok());

  constexpr int kKeys = 300;
  // Seed every key with generation 0 so no batch ever sees NotFound.
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), "mk" + std::to_string(i), "gen-0000").ok());
  }

  std::atomic<bool> done{false};
  std::atomic<uint64_t> violations{0};
  std::vector<std::thread> batchers;
  for (int r = 0; r < 2; ++r) {
    batchers.emplace_back([&, r] {
      Random rnd(static_cast<uint64_t>(r) + 31);
      while (!done.load()) {
        std::vector<std::string> key_storage;
        std::vector<Slice> keys;
        for (int k = 0; k < 16; ++k) {
          key_storage.push_back(
              "mk" + std::to_string(rnd.Uniform(kKeys)));
        }
        for (const auto& ks : key_storage) {
          keys.emplace_back(ks);
        }
        std::vector<std::string> values;
        std::vector<Status> statuses =
            db_->MultiGet(ReadOptions(), keys, &values);
        for (size_t i = 0; i < keys.size(); ++i) {
          // Keys are never deleted, so every status must be OK and every
          // value a well-formed generation stamp.
          if (!statuses[i].ok() || values[i].rfind("gen-", 0) != 0) {
            ++violations;
          }
        }
      }
    });
  }

  // Overwrite generations while flushes and compactions replace the view's
  // version underneath the batchers.
  for (int gen = 1; gen <= 12; ++gen) {
    char stamp[16];
    snprintf(stamp, sizeof(stamp), "gen-%04d", gen);
    for (int i = 0; i < kKeys; ++i) {
      ASSERT_TRUE(
          db_->Put(WriteOptions(), "mk" + std::to_string(i), stamp).ok());
    }
    ASSERT_TRUE(db_->Flush().ok());
  }
  ASSERT_TRUE(db_->CompactRange().ok());
  done.store(true);
  for (auto& t : batchers) {
    t.join();
  }

  EXPECT_EQ(0u, violations.load());
  EXPECT_TRUE(db_->ValidateTreeInvariants().ok());
  // Batched and per-key reads agree on the final state.
  std::vector<std::string> key_storage;
  std::vector<Slice> keys;
  for (int i = 0; i < kKeys; ++i) {
    key_storage.push_back("mk" + std::to_string(i));
  }
  for (const auto& ks : key_storage) {
    keys.emplace_back(ks);
  }
  std::vector<std::string> values;
  std::vector<Status> statuses = db_->MultiGet(ReadOptions(), keys, &values);
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(statuses[static_cast<size_t>(i)].ok());
    EXPECT_EQ("gen-0012", values[static_cast<size_t>(i)]);
  }
}

TEST_F(ConcurrencyTest, ConcurrentWritersSerializeCleanly) {
  ASSERT_TRUE(DB::Open(options_, "/conc3", &db_).ok());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 3000;
  std::vector<std::thread> writers;
  std::atomic<uint64_t> errors{0};
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string key =
            "w" + std::to_string(t) + "-" + std::to_string(i);
        if (!db_->Put(WriteOptions(), key, "v").ok()) {
          ++errors;
        }
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  EXPECT_EQ(0u, errors.load());
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());
  EXPECT_EQ(static_cast<uint64_t>(kThreads * kPerThread),
            db_->CountLiveEntries());
  EXPECT_TRUE(db_->ValidateTreeInvariants().ok());
}

// (a) Many threads hammering Put and multi-op Write concurrently: every
// acknowledged key must be readable afterwards and stats.writes must count
// every operation exactly once (group commit must not double- or
// drop-count coalesced batches).
TEST_F(ConcurrencyTest, WriteStormAllKeysReadableAndCounted) {
  options_.write_buffer_size = 64 << 10;
  ASSERT_TRUE(DB::Open(options_, "/conc4", &db_).ok());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 400;

  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> ops{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string key = "s" + std::to_string(t) + "-" + std::to_string(i);
        if (i % 4 == 0) {
          // Multi-op batch: two keys committed atomically.
          WriteBatch batch;
          batch.Put(key, "v");
          batch.Put(key + "-b", "v");
          if (!db_->Write(WriteOptions(), &batch).ok()) {
            ++errors;
          } else {
            ops.fetch_add(2);
          }
        } else {
          if (!db_->Put(WriteOptions(), key, "v").ok()) {
            ++errors;
          } else {
            ops.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  EXPECT_EQ(0u, errors.load());
  EXPECT_EQ(ops.load(), db_->statistics()->writes.load());

  std::string value;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      std::string key = "s" + std::to_string(t) + "-" + std::to_string(i);
      EXPECT_TRUE(db_->Get(ReadOptions(), key, &value).ok()) << key;
      if (i % 4 == 0) {
        EXPECT_TRUE(db_->Get(ReadOptions(), key + "-b", &value).ok()) << key;
      }
    }
  }
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());
  EXPECT_TRUE(db_->ValidateTreeInvariants().ok());
}

// (b) Under contention the leader/follower queue must actually coalesce:
// strictly fewer WAL commits than operations, and groups of > 1 writer. A
// slow emulated WAL device keeps each leader busy long enough for
// followers to pile up behind it.
TEST_F(ConcurrencyTest, GroupCommitCoalescesUnderContention) {
  DeviceModel device;
  device.per_op_latency_micros = 200;
  device.bandwidth_bytes_per_sec = 1ull << 30;
  LatencyEnv lat_env(&env_, device, SystemClock());
  options_.env = &lat_env;
  options_.write_buffer_size = 1 << 20;  // Keep flush churn out of the way.
  ASSERT_TRUE(DB::Open(options_, "/conc5", &db_).ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 100;
  std::atomic<uint64_t> errors{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string key = "g" + std::to_string(t) + "-" + std::to_string(i);
        if (!db_->Put(WriteOptions(), key, "v").ok()) {
          ++errors;
        }
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  EXPECT_EQ(0u, errors.load());

  const Statistics* stats = db_->statistics();
  uint64_t writes = stats->writes.load();
  uint64_t groups = stats->write_groups.load();
  EXPECT_EQ(static_cast<uint64_t>(kThreads * kPerThread), writes);
  EXPECT_LE(groups, writes);
  EXPECT_LT(groups, writes) << "no coalescing happened under contention";
  Histogram sizes = stats->WriteGroupSizes();
  EXPECT_EQ(groups, sizes.num());
  EXPECT_GT(sizes.max(), 1.0);
}

// (c) Sync and non-sync writers interleaved: a sync follower must never be
// committed by a non-sync leader (durability downgrades are forbidden), but
// every write must land regardless of which kind of leader commits it.
TEST_F(ConcurrencyTest, MixedSyncAndAsyncWritersInterleave) {
  ASSERT_TRUE(DB::Open(options_, "/conc6", &db_).ok());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 300;
  std::atomic<uint64_t> errors{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      WriteOptions wo;
      wo.sync = (t % 2 == 0);  // Even threads are sync writers.
      for (int i = 0; i < kPerThread; ++i) {
        std::string key = "m" + std::to_string(t) + "-" + std::to_string(i);
        if (!db_->Put(wo, key, "v" + std::to_string(i)).ok()) {
          ++errors;
        }
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  EXPECT_EQ(0u, errors.load());

  const Statistics* stats = db_->statistics();
  // Every sync write is covered by a sync'd group commit; there were
  // kThreads/2 * kPerThread sync writes, so at least one sync happened and
  // no more syncs than groups.
  EXPECT_GE(stats->wal_syncs.load(), 1u);
  EXPECT_LE(stats->wal_syncs.load(), stats->write_groups.load());

  std::string value;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      std::string key = "m" + std::to_string(t) + "-" + std::to_string(i);
      ASSERT_TRUE(db_->Get(ReadOptions(), key, &value).ok()) << key;
      EXPECT_EQ("v" + std::to_string(i), value);
    }
  }
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());
  EXPECT_TRUE(db_->ValidateTreeInvariants().ok());
}

// (d) Parallel background engine under reader/writer stress: 4 background
// threads, concurrent range-disjoint compactions with subcompaction
// splitting, readers validating their own stripe throughout. The scheduler
// must actually overlap jobs (observed parallelism > 1) without ever
// publishing a version that violates the level invariants.
TEST_F(ConcurrencyTest, ParallelCompactionsOverlapWithoutCorruption) {
  options_.write_buffer_size = 4 << 10;
  options_.max_bytes_for_level_base = 16 << 10;
  options_.target_file_size = 4 << 10;
  options_.background_threads = 4;
  options_.max_subcompactions = 3;
  options_.compaction_granularity = CompactionGranularity::kPartial;
  ASSERT_TRUE(DB::Open(options_, "/conc7", &db_).ok());

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 3000;
  std::atomic<uint64_t> errors{0};
  std::atomic<bool> stop_readers{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerWriter; ++i) {
        std::string key = "s" + std::to_string(t) + "/" +
                          std::to_string(i % 700);
        if (!db_->Put(WriteOptions(), key, "v" + std::to_string(i)).ok()) {
          ++errors;
        }
      }
    });
  }
  // Readers spot-check monotonicity of their stripe's visible values.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      Random rnd(500 + t);
      while (!stop_readers.load()) {
        std::string key = "s" + std::to_string(rnd.Uniform(kWriters)) + "/" +
                          std::to_string(rnd.Uniform(700));
        std::string value;
        Status s = db_->Get(ReadOptions(), key, &value);
        if (!s.ok() && !s.IsNotFound()) {
          ++errors;
        }
      }
    });
  }
  for (int t = 0; t < kWriters; ++t) {
    threads[static_cast<size_t>(t)].join();
  }
  stop_readers.store(true);
  for (size_t t = kWriters; t < threads.size(); ++t) {
    threads[t].join();
  }
  ASSERT_EQ(0u, errors.load());
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());

  Status s = db_->ValidateTreeInvariants();
  ASSERT_TRUE(s.ok()) << s.ToString() << "\n" << db_->DebugLevelSummary();

  // Every stripe's final value must be the last one its writer put.
  std::string value;
  for (int t = 0; t < kWriters; ++t) {
    for (int k = 0; k < 700; ++k) {
      std::string key = "s" + std::to_string(t) + "/" + std::to_string(k);
      int last = (kPerWriter - 1) / 700 * 700 + k;
      if (last >= kPerWriter) {
        last -= 700;
      }
      ASSERT_TRUE(db_->Get(ReadOptions(), key, &value).ok()) << key;
      EXPECT_EQ("v" + std::to_string(last), value) << key;
    }
  }

  const Statistics* stats = db_->statistics();
  EXPECT_GT(stats->compactions.load(), 1u);
  EXPECT_GE(stats->max_compactions_running.load(), 1u);
  EXPECT_EQ(0u, stats->compactions_running.load())
      << "gauge must return to zero once the engine is idle";
}

// ---------------------------------------------------------------------------
// Regression tests for latent bugs surfaced by the thread-safety annotation
// sweep.
// ---------------------------------------------------------------------------

// VlogManager::active_file_number() used to read the field without taking
// the manager's mutex, racing with OpenActive() during GC roll-over. The
// locked read must observe a monotone, in-range sequence (and is clean
// under TSan, which flagged the original bare read).
TEST_F(ConcurrencyTest, VlogActiveFileNumberIsSafeDuringRollover) {
  ASSERT_TRUE(env_.CreateDir("/vlogconc").ok());
  VlogManager vlog("/vlogconc", &env_);
  ASSERT_TRUE(vlog.OpenActive(1).ok());

  constexpr uint64_t kLastLog = 200;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> errors{0};
  std::thread roller([&] {
    for (uint64_t n = 2; n <= kLastLog; ++n) {
      if (!vlog.OpenActive(n).ok()) {
        ++errors;
        break;
      }
    }
    done.store(true);
  });
  uint64_t last_seen = 0;
  while (!done.load()) {
    uint64_t n = vlog.active_file_number();
    if (n < last_seen || n > kLastLog) {
      ++errors;
    }
    last_seen = n;
  }
  roller.join();
  EXPECT_EQ(0u, errors.load());
  EXPECT_EQ(kLastLog, vlog.active_file_number());
}

// Vlog GC relocates live records by re-putting them through the write path,
// then deletes the old log. A failed relocation used to be silently
// discarded, so the delete went ahead and the record was lost. The GC must
// instead surface the error and leave the old log (and its data) intact.
TEST_F(ConcurrencyTest, VlogGcRelocationFailureDoesNotLoseData) {
  FaultInjectionEnv fault_env(&env_);
  options_.env = &fault_env;
  options_.kv_separation = true;
  options_.kv_separation_threshold = 64;
  ASSERT_TRUE(DB::Open(options_, "/gcfail", &db_).ok());

  const std::string big(256, 'v');
  for (int i = 0; i < 10; ++i) {
    std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(db_->Put(WriteOptions(), key, big + std::to_string(i)).ok());
  }
  // Overwrite half inline so the old log holds both garbage and live data.
  for (int i = 0; i < 5; ++i) {
    std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(db_->Put(WriteOptions(), key, "small").ok());
  }

  fault_env.SetFailWrites(true);
  Status gc = db_->GarbageCollectVlog();
  EXPECT_FALSE(gc.ok()) << "GC must surface relocation failures";
  fault_env.SetFailWrites(false);

  // The old log must have survived: every live separated value is still
  // readable with its original contents.
  std::string value;
  for (int i = 5; i < 10; ++i) {
    std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(db_->Get(ReadOptions(), key, &value).ok()) << key;
    EXPECT_EQ(big + std::to_string(i), value) << key;
  }
}

// A transient flush failure under concurrent writers must heal through the
// retry/backoff path: writers stall while the memtable quota is exhausted,
// the retried flush drains it, and nothing is lost — all without a reopen
// or an explicit Resume().
TEST_F(ConcurrencyTest, ConcurrentWritersSurviveTransientFlushFailure) {
  FaultInjectionEnv fault_env(&env_);
  options_.env = &fault_env;
  options_.write_buffer_size = 4 << 10;
  options_.background_error_retry_initial_micros = 500;
  options_.background_error_retry_max_micros = 5000;
  ASSERT_TRUE(DB::Open(options_, "/softconc", &db_).ok());

  // The next two table-file syncs fail (flush output lands via Sync), then
  // the device heals.
  FaultRule rule;
  rule.file_kinds = kFaultTable;
  rule.ops = kFaultOpSync;
  rule.one_in = 1;
  rule.max_failures = 2;
  fault_env.AddRule(rule);

  constexpr int kThreads = 4;
  constexpr int kWritesPerThread = 400;
  std::atomic<uint64_t> write_errors{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      const std::string payload(64, static_cast<char>('a' + t));
      for (int i = 0; i < kWritesPerThread; ++i) {
        std::string key =
            "t" + std::to_string(t) + "-" + std::to_string(i);
        if (!db_->Put(WriteOptions(), key, payload).ok()) {
          ++write_errors;
        }
      }
    });
  }
  for (auto& th : writers) {
    th.join();
  }

  EXPECT_EQ(0u, write_errors.load());
  ASSERT_TRUE(db_->Flush().ok());
  EXPECT_GE(fault_env.injected_faults(), 1u);
  const Statistics* stats = db_->statistics();
  EXPECT_GE(stats->bg_error_soft.load(), 1u);
  EXPECT_GE(stats->bg_retry_success.load(), 1u);
  EXPECT_EQ(0u, stats->bg_error_hard.load());

  // Every acked write is readable.
  std::string value;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kWritesPerThread; ++i) {
      std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
      ASSERT_TRUE(db_->Get(ReadOptions(), key, &value).ok()) << key;
    }
  }
  ASSERT_TRUE(db_->ValidateTreeInvariants().ok());
}

// A WAL sync failure is a hard error: the DB drops to read-only mode (reads
// keep serving, writes fail fast), and Resume() rotates the poisoned WAL,
// re-persists its acked contents, and restores write service.
TEST_F(ConcurrencyTest, WalHardErrorReadOnlyModeAndResume) {
  FaultInjectionEnv fault_env(&env_);
  options_.env = &fault_env;
  ASSERT_TRUE(DB::Open(options_, "/walhard", &db_).ok());

  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), "pre" + std::to_string(i), "v").ok());
  }

  // Exactly one WAL sync fails; the write that requested it must error.
  FaultRule rule;
  rule.file_kinds = kFaultWal;
  rule.ops = kFaultOpSync;
  rule.one_in = 1;
  rule.max_failures = 1;
  fault_env.AddRule(rule);
  WriteOptions sync_wo;
  sync_wo.sync = true;
  EXPECT_FALSE(db_->Put(sync_wo, "poison", "v").ok());

  // Hard error: writes fail fast, reads keep serving the last view.
  EXPECT_FALSE(db_->Put(WriteOptions(), "rejected", "v").ok());
  std::string value;
  EXPECT_TRUE(db_->Get(ReadOptions(), "pre0", &value).ok());
  EXPECT_EQ(1u, db_->statistics()->bg_error_hard.load());
  EXPECT_TRUE(db_->BackgroundErrorState().hard());

  // Resume rotates the WAL and flushes the rescued memtable; write service
  // returns and pre-error acked writes are still there.
  ASSERT_TRUE(db_->Resume().ok());
  EXPECT_TRUE(db_->BackgroundErrorState().ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "after", "v").ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db_->Get(ReadOptions(), "pre" + std::to_string(i), &value).ok());
  }
  ASSERT_TRUE(db_->Get(ReadOptions(), "after", &value).ok());
}

}  // namespace
}  // namespace lsmlab
