// Randomized crash-consistency harness (ISSUE 5 tentpole, layer 3).
//
// Each iteration runs a mixed Put/Delete/Merge workload against a DB whose
// I/O goes through FaultInjectionEnv, "crashes" at a randomized point
// (freeze filesystem -> close DB -> drop unsynced data, possibly leaving a
// torn tail), reopens, and verifies:
//
//   1. every write acknowledged under sync=true survives the crash;
//   2. no write half-appears: each batch carries a monotone "!counter" put,
//      so the recovered counter k proves the recovered state is exactly the
//      batch prefix [0..k] — verified key-by-key against a replayed model;
//   3. the reopened tree passes ValidateTreeInvariants().
//
// Everything derives from one seed printed on entry; to reproduce a failure
// run: crash_harness_test --seed=<printed seed> --iters=<n>. Iterations
// also randomize background parallelism and (one in three) inject transient
// table-write faults so crashes land while the retry/backoff machinery is
// mid-recovery.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "db/db.h"
#include "db/filename.h"
#include "db/merge_operator.h"
#include "io/fault_injection_env.h"
#include "io/mem_env.h"
#include "util/random.h"

namespace lsmlab {
namespace {

uint64_t g_seed = 0xc0ffee5eed;
int g_iters = 50;
int g_start = 0;  // First iteration index; --start=<i> reproduces one iter.

// LSMLAB_TEST_SHARDS=N runs the randomized harness against the sharded
// facade: the key universe key00..key39 is split {"key10","key20","key30"}
// and every batch's "!counter" put lands in shard 0, so most batches span
// shards and commit through the two-phase path.
int TestShards() {
  const char* value = std::getenv("LSMLAB_TEST_SHARDS");
  if (value == nullptr || value[0] == '\0') {
    return 1;
  }
  return std::max(1, std::atoi(value));
}

// LSMLAB_TEST_INDEX=learned runs the harness with learned (PLR) per-table
// indexes: every flush/compaction output and every recovery then goes
// through the model-fit and digest-certification paths.
IndexType TestIndexType() {
  const char* value = std::getenv("LSMLAB_TEST_INDEX");
  if (value != nullptr && std::string(value) == "learned") {
    return IndexType::kLearnedPLR;
  }
  return IndexType::kBinarySearchFence;
}

// LSMLAB_TEST_CHECKPOINT=1 adds a checkpoint axis: each iteration takes an
// online backup at a random op index mid-workload, crashes as usual, then
// restores the backup into a fresh directory and verifies it holds exactly
// the workload prefix that preceded the cut (model-replay equivalence). A
// checkpoint that failed under injected faults must leave a directory that
// neither restores nor opens.
bool TestCheckpoint() {
  const char* value = std::getenv("LSMLAB_TEST_CHECKPOINT");
  return value != nullptr && value[0] != '\0' && value[0] != '0';
}

// One model mutation; a batch is a vector of these plus the counter put.
struct ModelOp {
  enum Kind { kPut, kDelete, kMerge } kind;
  std::string key;
  std::string value;  // Put value or merge operand.
};

void ApplyToModel(std::map<std::string, std::string>* model,
                  const ModelOp& op) {
  switch (op.kind) {
    case ModelOp::kPut:
      (*model)[op.key] = op.value;
      break;
    case ModelOp::kDelete:
      model->erase(op.key);
      break;
    case ModelOp::kMerge: {
      auto it = model->find(op.key);
      if (it == model->end()) {
        (*model)[op.key] = op.value;
      } else {
        it->second += ",";  // Mirrors NewStringAppendOperator(',').
        it->second += op.value;
      }
      break;
    }
  }
}

std::string CounterValue(int op_index) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08d", op_index);
  return buf;
}

// Runs one crash-reopen cycle; returns false (with gtest failures recorded)
// if any invariant broke.
void RunIteration(uint64_t seed, int iter) {
  Random rng(seed + static_cast<uint64_t>(iter) * 0x9e3779b97f4a7c15ull);

  MemEnv base;
  FaultInjectionEnv env(&base, rng.Next64());

  Options options;
  options.env = &env;
  options.write_buffer_size = 2 << 10;   // Tiny: crashes land mid-flush.
  options.level0_file_num_compaction_trigger = 2;  // ...and mid-compaction.
  options.max_bytes_for_level_base = 8 << 10;
  options.target_file_size = 4 << 10;
  options.background_threads = 1 + static_cast<int>(rng.Uniform(3));
  options.max_write_buffer_number = 2 + static_cast<int>(rng.Uniform(3));
  options.merge_operator = NewStringAppendOperator(',');
  // Fast retries so transient-fault iterations heal within the test budget.
  options.background_error_retry_initial_micros = 200;
  options.background_error_retry_max_micros = 2000;
  options.num_shards = TestShards();
  options.index_type = TestIndexType();
  if (options.num_shards > 1) {
    options.shard_split_keys.clear();
    for (int k = 1; k < options.num_shards; ++k) {
      char split[8];
      std::snprintf(split, sizeof(split), "key%02d",
                    40 * k / options.num_shards);
      options.shard_split_keys.push_back(split);
    }
  }

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/crash", &db).ok()) << "iter " << iter;

  // One in three iterations: a transient device fault window on table
  // writes, so the crash interleaves with soft-error retry/backoff.
  if (rng.OneIn(3)) {
    FaultRule rule;
    rule.file_kinds = kFaultTable;
    rule.ops = rng.OneIn(2) ? kFaultOpSync : kFaultOpAppend;
    rule.one_in = 4;
    rule.max_failures = 1 + static_cast<int64_t>(rng.Uniform(2));
    env.AddRule(rule);
  }

  const int total_ops = 60 + static_cast<int>(rng.Uniform(120));
  const int crash_point = static_cast<int>(rng.Uniform(total_ops + 1));

  // Checkpoint axis: back up mid-workload at a random op index. The
  // workload is single-threaded, so a checkpoint taken before op `cp_op`
  // must hold exactly the batch prefix [0..cp_op-1] — verified after the
  // crash by restoring into a fresh directory.
  const bool checkpoint_axis = TestCheckpoint();
  const int cp_op =
      checkpoint_axis ? static_cast<int>(rng.Uniform(crash_point + 1)) : -1;
  bool cp_taken = false;
  Status cp_status;

  std::vector<std::vector<ModelOp>> history;
  int durable = -1;  // Highest op index acked under sync=true.
  for (int op = 0; op < crash_point; ++op) {
    if (checkpoint_axis && op == cp_op) {
      cp_status = db->Checkpoint("/backup");
      cp_taken = true;
    }
    WriteBatch batch;
    std::vector<ModelOp> ops;
    const int muts = 1 + static_cast<int>(rng.Uniform(3));
    for (int m = 0; m < muts; ++m) {
      ModelOp mop;
      char key[8];
      std::snprintf(key, sizeof(key), "key%02d",
                    static_cast<int>(rng.Uniform(40)));
      mop.key = key;
      const uint64_t pick = rng.Uniform(10);
      if (pick < 6) {
        mop.kind = ModelOp::kPut;
        mop.value = "v" + std::to_string(op) + "-" + std::to_string(m);
        if (rng.OneIn(8)) {
          mop.value.append(150, 'x');  // Fat values force flush churn.
        }
        batch.Put(mop.key, mop.value);
      } else if (pick < 8) {
        mop.kind = ModelOp::kDelete;
        batch.Delete(mop.key);
      } else {
        mop.kind = ModelOp::kMerge;
        mop.value = "m" + std::to_string(op);
        batch.Merge(mop.key, mop.value);
      }
      ops.push_back(std::move(mop));
    }
    batch.Put("!counter", CounterValue(op));

    WriteOptions wo;
    wo.sync = rng.OneIn(4);
    Status s = db->Write(wo, &batch);
    ASSERT_TRUE(s.ok()) << "iter " << iter << " op " << op << ": "
                        << s.ToString();
    history.push_back(std::move(ops));
    if (wo.sync) {
      durable = op;
    }
    if (rng.OneIn(40)) {
      // An explicit flush now and then varies where sealed memtables and
      // L0 files sit relative to the crash point.
      ASSERT_TRUE(db->Flush().ok()) << "iter " << iter << " op " << op;
    }
  }

  if (checkpoint_axis && !cp_taken) {
    // cp_op == crash_point: the backup covers the whole surviving prefix.
    cp_status = db->Checkpoint("/backup");
    cp_taken = true;
  }

  // Crash: freeze the filesystem mid-flight (background flushes and
  // compactions may be running), tear down the DB, then lose everything
  // unsynced — sometimes with a torn tail.
  env.SetFilesystemActive(false);
  db.reset();
  ASSERT_TRUE(env.DropUnsyncedData(/*torn_tail_one_in=*/2).ok())
      << "iter " << iter;
  env.SetFilesystemActive(true);
  env.ClearRules();

  ASSERT_TRUE(DB::Open(options, "/crash", &db).ok())
      << "iter " << iter << " (reopen after crash at op " << crash_point
      << ", durable " << durable << ")";

  // Recover the prefix length from the counter key.
  std::string counter;
  Status cs = db->Get(ReadOptions(), "!counter", &counter);
  int recovered = -1;
  if (cs.ok()) {
    recovered = std::atoi(counter.c_str());
  } else {
    ASSERT_TRUE(cs.IsNotFound()) << "iter " << iter << ": " << cs.ToString();
  }
  // No acked-synced write may be lost, and nothing from the future may
  // appear.
  EXPECT_GE(recovered, durable)
      << "iter " << iter << ": lost synced write (crash at " << crash_point
      << ")";
  EXPECT_LT(recovered, crash_point) << "iter " << iter;

  // Replay the model to the recovered prefix and verify every key.
  std::map<std::string, std::string> model;
  for (int op = 0; op <= recovered; ++op) {
    for (const auto& mop : history[static_cast<size_t>(op)]) {
      ApplyToModel(&model, mop);
    }
  }
  std::string value;
  for (int k = 0; k < 40; ++k) {
    char key[8];
    std::snprintf(key, sizeof(key), "key%02d", k);
    Status gs = db->Get(ReadOptions(), key, &value);
    auto it = model.find(key);
    if (it == model.end()) {
      EXPECT_TRUE(gs.IsNotFound())
          << "iter " << iter << " key " << key << ": expected NOT_FOUND, got "
          << (gs.ok() ? value : gs.ToString());
    } else {
      ASSERT_TRUE(gs.ok()) << "iter " << iter << " key " << key << ": "
                           << gs.ToString();
      EXPECT_EQ(it->second, value) << "iter " << iter << " key " << key;
    }
  }
  // The same sample through batched MultiGet: recovery must look identical
  // through the Env::MultiRead path (the recovered tables are read in
  // batches instead of one pread per block).
  std::vector<std::string> key_storage;
  for (int k = 0; k < 40; ++k) {
    char key[8];
    std::snprintf(key, sizeof(key), "key%02d", k);
    key_storage.push_back(key);
  }
  std::vector<Slice> keys(key_storage.begin(), key_storage.end());
  std::vector<std::string> values;
  ReadOptions batched;
  batched.batched_io = true;
  std::vector<Status> statuses = db->MultiGet(batched, keys, &values);
  for (size_t k = 0; k < keys.size(); ++k) {
    auto it = model.find(key_storage[k]);
    if (it == model.end()) {
      EXPECT_TRUE(statuses[k].IsNotFound())
          << "iter " << iter << " MultiGet key " << key_storage[k];
    } else {
      ASSERT_TRUE(statuses[k].ok()) << "iter " << iter << " MultiGet key "
                                    << key_storage[k] << ": "
                                    << statuses[k].ToString();
      EXPECT_EQ(it->second, values[k])
          << "iter " << iter << " MultiGet key " << key_storage[k];
    }
  }

  Status vs = db->ValidateTreeInvariants();
  EXPECT_TRUE(vs.ok()) << "iter " << iter << ": " << vs.ToString();

  // Checkpoint axis: the backup was taken before the crash and its files
  // were hard-linked from live state, so the crash (DropUnsyncedData) just
  // ran over it too. A completed checkpoint must restore to exactly the
  // pre-cut prefix; a failed one must be rejected outright.
  if (checkpoint_axis && cp_taken) {
    if (cp_status.ok()) {
      ASSERT_TRUE(DB::Restore(options, "/backup", "/restore").ok())
          << "iter " << iter;
      std::unique_ptr<DB> rdb;
      ASSERT_TRUE(DB::Open(options, "/restore", &rdb).ok())
          << "iter " << iter << " (restore of checkpoint at op " << cp_op
          << ")";
      std::string rcounter;
      Status rcs = rdb->Get(ReadOptions(), "!counter", &rcounter);
      int rrecovered = -1;
      if (rcs.ok()) {
        rrecovered = std::atoi(rcounter.c_str());
      } else {
        ASSERT_TRUE(rcs.IsNotFound()) << "iter " << iter;
      }
      // Exact, not merely prefix-consistent: the checkpoint sealed and
      // fsynced the WAL, so every op before the cut is durable in it.
      EXPECT_EQ(cp_op - 1, rrecovered)
          << "iter " << iter << ": checkpoint must hold exactly ops [0.."
          << cp_op - 1 << "]";
      std::map<std::string, std::string> cp_model;
      for (int op = 0; op < cp_op; ++op) {
        for (const auto& mop : history[static_cast<size_t>(op)]) {
          ApplyToModel(&cp_model, mop);
        }
      }
      std::string rvalue;
      for (int k = 0; k < 40; ++k) {
        char key[8];
        std::snprintf(key, sizeof(key), "key%02d", k);
        Status rgs = rdb->Get(ReadOptions(), key, &rvalue);
        auto it = cp_model.find(key);
        if (it == cp_model.end()) {
          EXPECT_TRUE(rgs.IsNotFound())
              << "iter " << iter << " restore key " << key;
        } else {
          ASSERT_TRUE(rgs.ok()) << "iter " << iter << " restore key " << key
                                << ": " << rgs.ToString();
          EXPECT_EQ(it->second, rvalue)
              << "iter " << iter << " restore key " << key;
        }
      }
      EXPECT_TRUE(rdb->ValidateTreeInvariants().ok()) << "iter " << iter;
    } else {
      // An interrupted checkpoint never restores and never opens.
      EXPECT_FALSE(DB::Restore(options, "/backup", "/restore").ok())
          << "iter " << iter;
      if (env.FileExists(CheckpointInProgressFileName("/backup"))) {
        std::unique_ptr<DB> rdb;
        EXPECT_FALSE(DB::Open(options, "/backup", &rdb).ok())
            << "iter " << iter
            << ": partial checkpoint must not open as a DB";
      }
    }
  }
}

TEST(CrashHarness, RandomizedCrashReopenCycles) {
  std::printf("crash harness: seed=%llu iters=%d (reproduce with "
              "--seed=%llu)\n",
              static_cast<unsigned long long>(g_seed), g_iters,
              static_cast<unsigned long long>(g_seed));
  for (int iter = g_start; iter < g_start + g_iters; ++iter) {
    RunIteration(g_seed, iter);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

// Acceptance demo for the retry/backoff path: a transient flush failure
// (two failed table syncs, then the device heals) recovers automatically —
// Flush() returns OK, stats show the soft error and the successful retry,
// and the DB was never reopened or Resume()d.
TEST(CrashHarness, TransientFlushFailureRecoversWithoutReopen) {
  MemEnv base;
  FaultInjectionEnv env(&base, /*seed=*/7);
  Options options;
  options.env = &env;
  options.write_buffer_size = 4 << 10;
  options.background_error_retry_initial_micros = 200;
  options.background_error_retry_max_micros = 2000;
  options.merge_operator = NewStringAppendOperator(',');

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/soft", &db).ok());

  FaultRule rule;
  rule.file_kinds = kFaultTable;
  rule.ops = kFaultOpSync;
  rule.one_in = 1;
  rule.max_failures = 2;
  env.AddRule(rule);

  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db->Put(WriteOptions(), "key" + std::to_string(i),
                        std::string(64, 'v'))
                    .ok());
  }
  ASSERT_TRUE(db->Flush().ok());  // Heals through retries; no reopen.

  EXPECT_GE(env.injected_faults(), 1u);
  const Statistics* stats = db->statistics();
  EXPECT_GE(stats->bg_error_soft.load(), 1u);
  EXPECT_GE(stats->bg_retries.load(), 1u);
  EXPECT_GE(stats->bg_retry_success.load(), 1u);
  EXPECT_EQ(0u, stats->bg_error_hard.load());
  EXPECT_TRUE(db->BackgroundErrorState().ok());

  std::string value;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db->Get(ReadOptions(), "key" + std::to_string(i), &value).ok());
  }
  EXPECT_TRUE(db->ValidateTreeInvariants().ok());
}

// --- Cross-shard two-phase-commit atomicity (DESIGN.md, "Sharding
// architecture"). Three scripted crash points around the commit record:
// before it (prepares synced, commit append fails), after it (commit
// synced, markers unsynced), and a torn commit record. A cross-shard batch
// must recover all-or-nothing in every case.

Options ShardedCrashOptions(FaultInjectionEnv* env) {
  Options options;
  options.env = env;
  options.num_shards = 4;
  options.shard_split_keys = {"key10", "key20", "key30"};
  return options;
}

// One key per shard, written as a single atomic batch.
WriteBatch CrossShardBatch(const std::string& value) {
  WriteBatch batch;
  batch.Put("key05", value);
  batch.Put("key15", value);
  batch.Put("key25", value);
  batch.Put("key35", value);
  return batch;
}

void ExpectAllOrNothing(DB* db, const std::string& value, bool present) {
  for (const char* key : {"key05", "key15", "key25", "key35"}) {
    std::string got;
    Status s = db->Get(ReadOptions(), key, &got);
    if (present) {
      ASSERT_TRUE(s.ok()) << key << ": " << s.ToString();
      EXPECT_EQ(value, got) << key;
    } else {
      EXPECT_TRUE(s.IsNotFound())
          << key << ": expected NOT_FOUND, got "
          << (s.ok() ? got : s.ToString());
    }
  }
  EXPECT_TRUE(db->ValidateTreeInvariants().ok());
}

// Crash between prepare and commit: every shard holds a synced prepare,
// but the commit record never reaches the commit log. After reopen the
// batch must be absent from every shard (prepares without a commit are
// dropped), while earlier committed writes survive.
TEST(CrashHarness, CrossShardCrashBeforeCommitRecordAborts) {
  MemEnv base;
  FaultInjectionEnv env(&base, /*seed=*/11);
  Options options = ShardedCrashOptions(&env);

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/2pc", &db).ok());
  WriteBatch keep = CrossShardBatch("committed");
  ASSERT_TRUE(db->Write(WriteOptions(), &keep).ok());

  FaultRule rule;
  rule.file_kinds = kFaultCommitLog;
  rule.ops = kFaultOpAppend;
  rule.one_in = 1;
  env.AddRule(rule);

  WriteBatch doomed;
  doomed.Put("key05", "doomed");
  doomed.Put("key15", "doomed");
  doomed.Put("key25", "doomed");
  doomed.Put("key35", "doomed");
  Status ws = db->Write(WriteOptions(), &doomed);
  ASSERT_FALSE(ws.ok()) << "commit-log append fault must fail the write";
  EXPECT_EQ(8u, db->statistics()->shard_prepares.load());
  EXPECT_EQ(4u, db->statistics()->shard_commits.load());

  env.SetFilesystemActive(false);
  db.reset();
  ASSERT_TRUE(env.DropUnsyncedData().ok());
  env.SetFilesystemActive(true);
  env.ClearRules();

  ASSERT_TRUE(DB::Open(options, "/2pc", &db).ok());
  ExpectAllOrNothing(db.get(), "committed", /*present=*/true);
  std::string got;
  EXPECT_TRUE(db->Get(ReadOptions(), "key05", &got).ok());
  EXPECT_EQ("committed", got) << "aborted batch must not clobber old value";
}

// Crash between commit record and the per-shard commit markers: the write
// was acknowledged, every marker and memtable apply is lost. Reopen must
// replay the batch into every shard from the synced prepares plus the
// commit-log record.
TEST(CrashHarness, CrossShardCrashAfterCommitRecordReplays) {
  MemEnv base;
  FaultInjectionEnv env(&base, /*seed=*/12);
  Options options = ShardedCrashOptions(&env);

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/2pc-commit", &db).ok());
  WriteBatch batch = CrossShardBatch("acked");
  WriteOptions wo;
  wo.sync = false;  // 2PC must make the batch durable regardless.
  ASSERT_TRUE(db->Write(wo, &batch).ok());

  env.SetFilesystemActive(false);
  db.reset();
  ASSERT_TRUE(env.DropUnsyncedData().ok());
  env.SetFilesystemActive(true);

  ASSERT_TRUE(DB::Open(options, "/2pc-commit", &db).ok());
  ExpectAllOrNothing(db.get(), "acked", /*present=*/true);

  // And the replayed state survives a further clean reopen (the recovered
  // batch re-enters each shard's WAL with fresh sequence numbers).
  db.reset();
  ASSERT_TRUE(DB::Open(options, "/2pc-commit", &db).ok());
  ExpectAllOrNothing(db.get(), "acked", /*present=*/true);
}

// Torn commit record: the commit-log sync fails (outcome reported as
// indeterminate) and the crash leaves a corrupted prefix of the record on
// disk. Recovery must treat the torn record as absent and drop the batch
// from every shard.
TEST(CrashHarness, CrossShardTornCommitRecordAborts) {
  MemEnv base;
  FaultInjectionEnv env(&base, /*seed=*/13);
  Options options = ShardedCrashOptions(&env);

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/2pc-torn", &db).ok());
  WriteBatch keep = CrossShardBatch("committed");
  ASSERT_TRUE(db->Write(WriteOptions(), &keep).ok());

  FaultRule rule;
  rule.file_kinds = kFaultCommitLog;
  rule.ops = kFaultOpSync;
  rule.one_in = 1;
  env.AddRule(rule);

  WriteBatch doomed = CrossShardBatch("doomed");
  Status ws = db->Write(WriteOptions(), &doomed);
  ASSERT_FALSE(ws.ok()) << "commit-log sync fault must fail the write";

  env.SetFilesystemActive(false);
  db.reset();
  // torn_tail_one_in=1: every file that lost unsynced bytes keeps a
  // corrupted prefix of them — including the unsynced commit record.
  ASSERT_TRUE(env.DropUnsyncedData(/*torn_tail_one_in=*/1).ok());
  env.SetFilesystemActive(true);
  env.ClearRules();

  ASSERT_TRUE(DB::Open(options, "/2pc-torn", &db).ok());
  ExpectAllOrNothing(db.get(), "committed", /*present=*/true);
}

}  // namespace
}  // namespace lsmlab

// Custom main: gtest_main cannot parse --seed/--iters, and the CI crash
// harness job wants both pinned.
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    unsigned long long seed;
    int iters;
    if (std::sscanf(argv[i], "--seed=%llu", &seed) == 1) {
      lsmlab::g_seed = seed;
    } else if (std::sscanf(argv[i], "--iters=%d", &iters) == 1) {
      lsmlab::g_iters = iters;
    } else if (std::sscanf(argv[i], "--start=%d", &iters) == 1) {
      lsmlab::g_start = iters;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  return RUN_ALL_TESTS();
}
