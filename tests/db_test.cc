#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "db/db.h"
#include "db/merge_operator.h"
#include "io/mem_env.h"
#include "util/random.h"

namespace lsmlab {
namespace {

/// CI shard axis: LSMLAB_TEST_SHARDS=N re-runs the whole suite against an
/// N-shard DB (uniform first-byte splits). 0/unset is the classic
/// single-engine layout.
int TestShards() {
  const char* value = std::getenv("LSMLAB_TEST_SHARDS");
  return value != nullptr ? std::max(1, std::atoi(value)) : 1;
}

/// CI index axis: LSMLAB_TEST_INDEX=learned re-runs the whole suite with
/// per-SSTable learned (PLR) indexes instead of binary-search fences.
IndexType TestIndexType() {
  const char* value = std::getenv("LSMLAB_TEST_INDEX");
  if (value != nullptr && std::string(value) == "learned") {
    return IndexType::kLearnedPLR;
  }
  return IndexType::kBinarySearchFence;
}

/// Base fixture: small buffers so flushes and compactions happen quickly.
class DBTest : public ::testing::Test {
 protected:
  DBTest() {
    options_.env = &env_;
    options_.write_buffer_size = 8 << 10;
    options_.max_bytes_for_level_base = 64 << 10;
    options_.target_file_size = 16 << 10;
    options_.block_size = 1024;
    options_.filter_policy = NewBloomFilterPolicy(10.0);
    options_.block_cache_capacity = 1 << 20;
    options_.num_shards = TestShards();
    options_.index_type = TestIndexType();
  }

  ~DBTest() override { db_.reset(); }

  void OpenDB() {
    db_.reset();
    ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok());
  }

  void Reopen() {
    db_.reset();
    ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok());
  }

  Status Put(const std::string& key, const std::string& value) {
    return db_->Put(WriteOptions(), key, value);
  }

  std::string Get(const std::string& key) {
    std::string value;
    Status s = db_->Get(ReadOptions(), key, &value);
    if (s.IsNotFound()) {
      return "NOT_FOUND";
    }
    if (!s.ok()) {
      return "ERROR: " + s.ToString();
    }
    return value;
  }

  /// All live (key, value) pairs via a full scan.
  std::map<std::string, std::string> Dump() {
    std::map<std::string, std::string> result;
    auto iter = db_->NewIterator(ReadOptions());
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      result[iter->key().ToString()] = iter->value().ToString();
    }
    EXPECT_TRUE(iter->status().ok());
    return result;
  }

  MemEnv env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(DBTest, EmptyDB) {
  OpenDB();
  EXPECT_EQ("NOT_FOUND", Get("anything"));
  EXPECT_TRUE(Dump().empty());
}

TEST_F(DBTest, PutAndGetFromMemtable) {
  OpenDB();
  ASSERT_TRUE(Put("foo", "v1").ok());
  EXPECT_EQ("v1", Get("foo"));
  ASSERT_TRUE(Put("foo", "v2").ok());
  EXPECT_EQ("v2", Get("foo"));
}

TEST_F(DBTest, GetFromDiskAfterFlush) {
  OpenDB();
  ASSERT_TRUE(Put("foo", "disk-value").ok());
  ASSERT_TRUE(db_->Flush().ok());
  EXPECT_EQ("disk-value", Get("foo"));
  EXPECT_GT(db_->TotalSstBytes(), 0u);
}

TEST_F(DBTest, DeleteHidesOlderVersions) {
  OpenDB();
  ASSERT_TRUE(Put("k", "v").ok());
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->Delete(WriteOptions(), "k").ok());
  EXPECT_EQ("NOT_FOUND", Get("k"));
  ASSERT_TRUE(db_->Flush().ok());
  EXPECT_EQ("NOT_FOUND", Get("k"));
}

TEST_F(DBTest, WriteThenReadManyAcrossFlushes) {
  OpenDB();
  Random rnd(301);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 3000; ++i) {
    std::string key = "key" + std::to_string(rnd.Uniform(1000));
    std::string value = "v" + std::to_string(i);
    model[key] = value;
    ASSERT_TRUE(Put(key, value).ok());
    if (i % 500 == 499) {
      ASSERT_TRUE(db_->Flush().ok());
    }
  }
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());
  for (const auto& [key, value] : model) {
    EXPECT_EQ(value, Get(key)) << key;
  }
  EXPECT_EQ(model, Dump());
}

TEST_F(DBTest, ScanIsSortedAndSuppressesTombstones) {
  OpenDB();
  ASSERT_TRUE(Put("a", "1").ok());
  ASSERT_TRUE(Put("b", "2").ok());
  ASSERT_TRUE(Put("c", "3").ok());
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->Delete(WriteOptions(), "b").ok());
  ASSERT_TRUE(Put("d", "4").ok());

  auto dump = Dump();
  ASSERT_EQ(3u, dump.size());
  EXPECT_EQ("1", dump["a"]);
  EXPECT_EQ(0u, dump.count("b"));
  EXPECT_EQ("3", dump["c"]);
  EXPECT_EQ("4", dump["d"]);
}

TEST_F(DBTest, IteratorSeek) {
  OpenDB();
  for (int i = 0; i < 100; i += 2) {
    char key[16];
    snprintf(key, sizeof(key), "k%04d", i);
    ASSERT_TRUE(Put(key, std::to_string(i)).ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  auto iter = db_->NewIterator(ReadOptions());
  iter->Seek("k0051");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("k0052", iter->key().ToString());
}

TEST_F(DBTest, SnapshotReadsOldState) {
  OpenDB();
  ASSERT_TRUE(Put("k", "old").ok());
  SequenceNumber snap = db_->GetSnapshot();
  ASSERT_TRUE(Put("k", "new").ok());
  ASSERT_TRUE(db_->Flush().ok());

  ReadOptions at_snap;
  at_snap.snapshot_seqno = snap;
  std::string value;
  ASSERT_TRUE(db_->Get(at_snap, "k", &value).ok());
  EXPECT_EQ("old", value);
  EXPECT_EQ("new", Get("k"));
  db_->ReleaseSnapshot(snap);
}

TEST_F(DBTest, SnapshotSurvivesCompaction) {
  OpenDB();
  ASSERT_TRUE(Put("k", "old").ok());
  SequenceNumber snap = db_->GetSnapshot();
  ASSERT_TRUE(Put("k", "new").ok());
  ASSERT_TRUE(db_->CompactRange().ok());

  ReadOptions at_snap;
  at_snap.snapshot_seqno = snap;
  std::string value;
  ASSERT_TRUE(db_->Get(at_snap, "k", &value).ok());
  EXPECT_EQ("old", value);
  db_->ReleaseSnapshot(snap);
}

TEST_F(DBTest, RecoverFromWal) {
  OpenDB();
  ASSERT_TRUE(Put("persist", "me").ok());
  ASSERT_TRUE(Put("and", "me-too").ok());
  // No flush: data is only in WAL + memtable.
  Reopen();
  EXPECT_EQ("me", Get("persist"));
  EXPECT_EQ("me-too", Get("and"));
}

TEST_F(DBTest, RecoverFromSstAndWal) {
  OpenDB();
  ASSERT_TRUE(Put("in-sst", "flushed").ok());
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(Put("in-wal", "logged").ok());
  Reopen();
  EXPECT_EQ("flushed", Get("in-sst"));
  EXPECT_EQ("logged", Get("in-wal"));
}

TEST_F(DBTest, RecoverAppliesDeletes) {
  OpenDB();
  ASSERT_TRUE(Put("k", "v").ok());
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->Delete(WriteOptions(), "k").ok());
  Reopen();
  EXPECT_EQ("NOT_FOUND", Get("k"));
}

TEST_F(DBTest, RecoverManyWrites) {
  OpenDB();
  std::map<std::string, std::string> model;
  Random rnd(11);
  for (int i = 0; i < 2000; ++i) {
    std::string key = "key" + std::to_string(rnd.Uniform(400));
    std::string value = "val" + std::to_string(i);
    model[key] = value;
    ASSERT_TRUE(Put(key, value).ok());
  }
  Reopen();
  EXPECT_EQ(model, Dump());
}

TEST_F(DBTest, CompactRangeReducesRunsAndPreservesData) {
  OpenDB();
  std::map<std::string, std::string> model;
  Random rnd(42);
  for (int i = 0; i < 4000; ++i) {
    std::string key = "key" + std::to_string(rnd.Uniform(800));
    std::string value = std::string(32, static_cast<char>('a' + i % 26));
    model[key] = value;
    ASSERT_TRUE(Put(key, value).ok());
  }
  ASSERT_TRUE(db_->CompactRange().ok());
  // After full compaction the tree collapses to very few runs.
  EXPECT_LE(db_->TotalSortedRuns(), 2);
  EXPECT_EQ(model, Dump());
}

TEST_F(DBTest, UpdatesReclaimSpaceViaCompaction) {
  OpenDB();
  const std::string big(512, 'x');
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(Put("key" + std::to_string(i), big).ok());
    }
  }
  ASSERT_TRUE(db_->CompactRange().ok());
  uint64_t after = db_->TotalSstBytes();
  // 50 keys x ~512B = ~25KB live; compaction must have dropped the other
  // 19 rounds of shadowed versions.
  EXPECT_LT(after, 120u << 10);
  EXPECT_EQ(50u, db_->CountLiveEntries());
}

TEST_F(DBTest, TombstonesPurgedAtBottomLevel) {
  OpenDB();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(Put("key" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(db_->CompactRange().ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db_->Delete(WriteOptions(), "key" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db_->CompactRange().ok());
  EXPECT_EQ(0u, db_->CountLiveEntries());
  EXPECT_GT(db_->statistics()->tombstones_dropped.load(), 0u);
  // Everything (values + tombstones) is gone: the tree is almost empty.
  EXPECT_LT(db_->TotalSstBytes(), 4u << 10);
}

TEST_F(DBTest, SingleDeleteRemovesKey) {
  OpenDB();
  ASSERT_TRUE(Put("once", "written").ok());
  ASSERT_TRUE(db_->SingleDelete(WriteOptions(), "once").ok());
  EXPECT_EQ("NOT_FOUND", Get("once"));
  ASSERT_TRUE(db_->CompactRange().ok());
  EXPECT_EQ("NOT_FOUND", Get("once"));
  EXPECT_EQ(0u, db_->CountLiveEntries());
}

TEST_F(DBTest, DeleteRangeRemovesSpan) {
  OpenDB();
  for (char c = 'a'; c <= 'j'; ++c) {
    ASSERT_TRUE(Put(std::string(1, c), "v").ok());
  }
  ASSERT_TRUE(db_->DeleteRange(WriteOptions(), "c", "g").ok());
  auto dump = Dump();
  EXPECT_EQ(6u, dump.size());  // a, b, g, h, i, j.
  EXPECT_EQ(1u, dump.count("a"));
  EXPECT_EQ(0u, dump.count("c"));
  EXPECT_EQ(0u, dump.count("f"));
  EXPECT_EQ(1u, dump.count("g"));
}

TEST_F(DBTest, StatisticsTrackReadsAndWrites) {
  OpenDB();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(Put("key" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  Get("key1");
  Get("definitely-absent");
  Statistics* stats = db_->statistics();
  EXPECT_EQ(100u, stats->writes.load());
  EXPECT_EQ(2u, stats->point_lookups.load());
  EXPECT_EQ(1u, stats->point_lookup_found.load());
  EXPECT_GE(stats->flushes.load(), 1u);
}

TEST_F(DBTest, FilterSkipsRunsForAbsentKeys) {
  OpenDB();
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(Put("present" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());

  db_->statistics()->Reset();
  // Absent keys *inside* the run's key range, so fence pointers cannot rule
  // them out and only the Bloom filter saves the probe.
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ("NOT_FOUND", Get("present" + std::to_string(i) + "x"));
  }
  // With 10-bit Blooms, nearly all absent lookups skip every run.
  EXPECT_GT(db_->statistics()->runs_skipped_by_filter.load(), 150u);
  EXPECT_LT(db_->statistics()->runs_probed.load(), 20u);
}

TEST_F(DBTest, NoSlowdownWriteFailsInsteadOfStalling) {
  options_.max_write_buffer_number = 1;  // Any full memtable = hard stall.
  options_.write_buffer_size = 4096;
  OpenDB();
  WriteOptions no_stall;
  no_stall.no_slowdown = true;
  // Fill until the write path would stall; must see Busy, not a hang.
  bool saw_busy = false;
  for (int i = 0; i < 10000 && !saw_busy; ++i) {
    Status s = db_->Put(no_stall, "key" + std::to_string(i),
                        std::string(128, 'v'));
    if (s.IsBusy()) {
      saw_busy = true;
    } else {
      ASSERT_TRUE(s.ok()) << s.ToString();
    }
  }
  EXPECT_TRUE(saw_busy);
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());
}

TEST_F(DBTest, BinaryKeysAndValues) {
  OpenDB();
  std::string key("\x00\x01\x02\xff\xfe", 5);
  std::string value("\x00binary\xff", 8);
  ASSERT_TRUE(Put(key, value).ok());
  ASSERT_TRUE(db_->Flush().ok());
  EXPECT_EQ(value, Get(key));
}

TEST_F(DBTest, LargeValues) {
  OpenDB();
  std::string big(200 << 10, 'B');  // Bigger than a memtable.
  ASSERT_TRUE(Put("big", big).ok());
  EXPECT_EQ(big, Get("big"));
  ASSERT_TRUE(db_->Flush().ok());
  EXPECT_EQ(big, Get("big"));
  Reopen();
  EXPECT_EQ(big, Get("big"));
}

TEST_F(DBTest, MissingDbFailsWithoutCreateIfMissing) {
  options_.create_if_missing = false;
  std::unique_ptr<DB> db;
  Status s = DB::Open(options_, "/no-such-db", &db);
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST_F(DBTest, ErrorIfExists) {
  OpenDB();
  db_.reset();
  options_.error_if_exists = true;
  std::unique_ptr<DB> db;
  Status s = DB::Open(options_, "/db", &db);
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST_F(DBTest, DestroyRemovesEverything) {
  OpenDB();
  ASSERT_TRUE(Put("k", "v").ok());
  ASSERT_TRUE(db_->Flush().ok());
  db_.reset();
  ASSERT_TRUE(DestroyDB(options_, "/db").ok());
  std::vector<std::string> children;
  Status ls = env_.GetChildren("/db", &children);
  EXPECT_TRUE(ls.ok() || ls.IsNotFound()) << ls.ToString();
  EXPECT_TRUE(children.empty());
}

// ---------------------------------------------------------------------------
// Layout matrix: the same correctness suite must hold for every disk data
// layout of tutorial §2.2.2 and every memtable rep of §2.2.1.
// ---------------------------------------------------------------------------

struct LayoutParam {
  DataLayout layout;
  MemTableRepType rep;
  CompactionGranularity granularity;
  const char* name;
};

class DBLayoutTest : public ::testing::TestWithParam<LayoutParam> {
 protected:
  DBLayoutTest() {
    options_.env = &env_;
    options_.write_buffer_size = 4 << 10;
    options_.max_bytes_for_level_base = 32 << 10;
    options_.target_file_size = 8 << 10;
    options_.block_size = 1024;
    options_.size_ratio = 3;
    options_.filter_policy = NewBloomFilterPolicy(10.0);
    options_.data_layout = GetParam().layout;
    options_.memtable_rep = GetParam().rep;
    options_.compaction_granularity = GetParam().granularity;
    if (GetParam().layout == DataLayout::kLeveling) {
      options_.level0_file_num_compaction_trigger = 1;
    }
  }

  MemEnv env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_P(DBLayoutTest, RandomWorkloadMatchesModel) {
  ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok());
  Random rnd(GetParam().layout == DataLayout::kTiering ? 7 : 13);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 5000; ++i) {
    std::string key = "key" + std::to_string(rnd.Uniform(600));
    if (rnd.OneIn(10)) {
      model.erase(key);
      ASSERT_TRUE(db_->Delete(WriteOptions(), key).ok());
    } else {
      std::string value = "v" + std::to_string(i);
      model[key] = value;
      ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
    }
  }
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());

  // Point lookups agree with the model.
  for (const auto& [key, value] : model) {
    std::string got;
    ASSERT_TRUE(db_->Get(ReadOptions(), key, &got).ok()) << key;
    EXPECT_EQ(value, got);
  }
  // Scan agrees with the model.
  std::map<std::string, std::string> dumped;
  auto iter = db_->NewIterator(ReadOptions());
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    dumped[iter->key().ToString()] = iter->value().ToString();
  }
  EXPECT_EQ(model, dumped);

  // Survives reopen.
  db_.reset();
  ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok());
  std::string got;
  for (const auto& [key, value] : model) {
    ASSERT_TRUE(db_->Get(ReadOptions(), key, &got).ok()) << key;
    EXPECT_EQ(value, got);
  }
}

TEST_P(DBLayoutTest, TieredLevelsRespectRunBounds) {
  ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok());
  Random rnd(5);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "key" + std::to_string(rnd.Uniform(2000)),
                         std::string(64, 'v'))
                    .ok());
  }
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());
  // After quiescing, no tiered level may exceed its run trigger and no
  // leveled level (except transient L0) holds overlapping files.
  // (The run-count bound is exactly the tiering invariant of §2.2.2.)
  EXPECT_GE(db_->TotalSortedRuns(), 1);
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, DBLayoutTest,
    ::testing::Values(
        LayoutParam{DataLayout::kLeveling, MemTableRepType::kSkipList,
                    CompactionGranularity::kWholeLevel, "Leveling"},
        LayoutParam{DataLayout::kTiering, MemTableRepType::kSkipList,
                    CompactionGranularity::kWholeLevel, "Tiering"},
        LayoutParam{DataLayout::kLazyLeveling, MemTableRepType::kSkipList,
                    CompactionGranularity::kWholeLevel, "LazyLeveling"},
        LayoutParam{DataLayout::kOneLeveling, MemTableRepType::kSkipList,
                    CompactionGranularity::kPartial, "OneLevelingPartial"},
        LayoutParam{DataLayout::kOneLeveling, MemTableRepType::kVector,
                    CompactionGranularity::kPartial, "VectorMemtable"},
        LayoutParam{DataLayout::kOneLeveling, MemTableRepType::kHashSkipList,
                    CompactionGranularity::kPartial, "HashSkipListMemtable"},
        LayoutParam{DataLayout::kOneLeveling, MemTableRepType::kHashLinkList,
                    CompactionGranularity::kPartial, "HashLinkListMemtable"}),
    [](const ::testing::TestParamInfo<LayoutParam>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// WiscKey key-value separation
// ---------------------------------------------------------------------------

class KvSepTest : public ::testing::Test {
 protected:
  KvSepTest() {
    options_.env = &env_;
    options_.write_buffer_size = 8 << 10;
    options_.kv_separation = true;
    options_.kv_separation_threshold = 100;
  }

  MemEnv env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(KvSepTest, LargeValuesRoundTripThroughVlog) {
  ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok());
  std::string big(500, 'V');
  ASSERT_TRUE(db_->Put(WriteOptions(), "big", big).ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "small", "tiny").ok());
  ASSERT_TRUE(db_->Flush().ok());

  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "big", &value).ok());
  EXPECT_EQ(big, value);
  ASSERT_TRUE(db_->Get(ReadOptions(), "small", &value).ok());
  EXPECT_EQ("tiny", value);
  EXPECT_GT(db_->vlog()->TotalBytes(), 0u);
}

TEST_F(KvSepTest, ScansResolvePointers) {
  ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok());
  std::string big(300, 'x');
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "key" + std::to_string(i), big).ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  auto iter = db_->NewIterator(ReadOptions());
  int count = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    EXPECT_EQ(big, iter->value().ToString());
    ++count;
  }
  EXPECT_EQ(50, count);
}

TEST_F(KvSepTest, CompactionTracksVlogGarbage) {
  ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok());
  std::string big(400, 'y');
  // Overwrite the same keys repeatedly: old vlog entries become garbage
  // when compaction drops their pointers.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(db_->Put(WriteOptions(), "k" + std::to_string(i), big).ok());
    }
  }
  ASSERT_TRUE(db_->CompactRange().ok());
  EXPECT_GT(db_->vlog()->GarbageBytes(), 0u);
}

TEST_F(KvSepTest, VlogGcReclaimsDeadValues) {
  ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok());
  std::string big(400, 'z');
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(db_->Put(WriteOptions(), "k" + std::to_string(i), big).ok());
    }
  }
  ASSERT_TRUE(db_->CompactRange().ok());
  ASSERT_TRUE(db_->GarbageCollectVlog().ok());
  ASSERT_TRUE(db_->Flush().ok());

  // All 20 keys still readable after GC rewrote the logs.
  std::string value;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db_->Get(ReadOptions(), "k" + std::to_string(i), &value).ok())
        << i;
    EXPECT_EQ(big, value);
  }
}

// ---------------------------------------------------------------------------
// MultiGet: the batched lookup must agree with per-key Get everywhere.
// ---------------------------------------------------------------------------

TEST_F(DBTest, MultiGetMatchesGetAcrossTree) {
  OpenDB();
  // Enough data to spread keys over memtable, L0, and deeper levels.
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(Put("key" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());
  for (int i = 600; i < 650; ++i) {  // Fresh keys stay in the memtable.
    ASSERT_TRUE(Put("key" + std::to_string(i), "v" + std::to_string(i)).ok());
  }

  std::vector<std::string> key_storage;
  for (int i = 0; i < 700; i += 7) {  // Includes absent keys >= 650.
    key_storage.push_back("key" + std::to_string(i));
  }
  key_storage.push_back("never-written");
  std::vector<Slice> keys(key_storage.begin(), key_storage.end());

  std::vector<std::string> values;
  std::vector<Status> statuses = db_->MultiGet(ReadOptions(), keys, &values);
  ASSERT_EQ(keys.size(), statuses.size());
  ASSERT_EQ(keys.size(), values.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    std::string expected = Get(key_storage[i]);
    if (expected == "NOT_FOUND") {
      EXPECT_TRUE(statuses[i].IsNotFound()) << key_storage[i];
    } else {
      ASSERT_TRUE(statuses[i].ok()) << key_storage[i];
      EXPECT_EQ(expected, values[i]) << key_storage[i];
    }
  }
}

TEST_F(DBTest, MultiGetSeesDeletionsAndOverwrites) {
  OpenDB();
  ASSERT_TRUE(Put("a", "1").ok());
  ASSERT_TRUE(Put("b", "2").ok());
  ASSERT_TRUE(Put("c", "3").ok());
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->Delete(WriteOptions(), "b").ok());
  ASSERT_TRUE(Put("c", "3-new").ok());  // Newer version shadows the flushed one.

  std::vector<Slice> keys = {"a", "b", "c", "d"};
  std::vector<std::string> values;
  std::vector<Status> statuses = db_->MultiGet(ReadOptions(), keys, &values);
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_EQ("1", values[0]);
  EXPECT_TRUE(statuses[1].IsNotFound());  // Tombstone beats the flushed put.
  EXPECT_TRUE(statuses[2].ok());
  EXPECT_EQ("3-new", values[2]);
  EXPECT_TRUE(statuses[3].IsNotFound());  // Never written.
}

TEST_F(DBTest, MultiGetHonorsSnapshots) {
  OpenDB();
  ASSERT_TRUE(Put("x", "old-x").ok());
  ASSERT_TRUE(Put("y", "old-y").ok());
  SequenceNumber snap = db_->GetSnapshot();
  ASSERT_TRUE(Put("x", "new-x").ok());
  ASSERT_TRUE(db_->Delete(WriteOptions(), "y").ok());
  ASSERT_TRUE(Put("z", "new-z").ok());
  ASSERT_TRUE(db_->Flush().ok());

  std::vector<Slice> keys = {"x", "y", "z"};
  std::vector<std::string> values;
  ReadOptions at_snap;
  at_snap.snapshot_seqno = snap;
  std::vector<Status> statuses = db_->MultiGet(at_snap, keys, &values);
  EXPECT_EQ("old-x", values[0]);
  EXPECT_EQ("old-y", values[1]);
  EXPECT_TRUE(statuses[2].IsNotFound());  // "z" was written after the snap.

  statuses = db_->MultiGet(ReadOptions(), keys, &values);
  EXPECT_EQ("new-x", values[0]);
  EXPECT_TRUE(statuses[1].IsNotFound());
  EXPECT_EQ("new-z", values[2]);
  db_->ReleaseSnapshot(snap);
}

TEST_F(DBTest, MultiGetResolvesMergeChains) {
  options_.merge_operator = NewStringAppendOperator(',');
  OpenDB();
  ASSERT_TRUE(Put("m", "base").ok());
  ASSERT_TRUE(db_->Merge(WriteOptions(), "m", "op1").ok());
  ASSERT_TRUE(db_->Flush().ok());  // Split the chain across storage tiers.
  ASSERT_TRUE(db_->Merge(WriteOptions(), "m", "op2").ok());
  ASSERT_TRUE(db_->Merge(WriteOptions(), "pure", "solo").ok());

  std::vector<Slice> keys = {"m", "pure"};
  std::vector<std::string> values;
  std::vector<Status> statuses = db_->MultiGet(ReadOptions(), keys, &values);
  ASSERT_TRUE(statuses[0].ok());
  EXPECT_EQ("base,op1,op2", values[0]);
  ASSERT_TRUE(statuses[1].ok());
  EXPECT_EQ("solo", values[1]);
  // Batched and per-key resolution must agree.
  EXPECT_EQ(values[0], Get("m"));
  EXPECT_EQ(values[1], Get("pure"));
}

TEST_F(DBTest, MultiGetEmptyAndDuplicateKeys) {
  OpenDB();
  ASSERT_TRUE(Put("dup", "val").ok());

  std::vector<std::string> values;
  std::vector<Status> statuses =
      db_->MultiGet(ReadOptions(), {}, &values);
  EXPECT_TRUE(statuses.empty());
  EXPECT_TRUE(values.empty());

  std::vector<Slice> keys = {"dup", "dup", "dup"};
  statuses = db_->MultiGet(ReadOptions(), keys, &values);
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(statuses[i].ok());
    EXPECT_EQ("val", values[i]);
  }
  EXPECT_GE(db_->statistics()->multiget_batches.load(), 2u);
  EXPECT_GE(db_->statistics()->multiget_keys.load(), 3u);
}

// ---------------------------------------------------------------------------
// Batched I/O: MultiGet with batched_io on/off must be byte-identical, and
// the batch/readahead counters must actually move.
// ---------------------------------------------------------------------------

TEST_F(DBTest, MultiGetBatchedAgreesWithSerialEverywhere) {
  options_.merge_operator = NewStringAppendOperator(',');
  OpenDB();
  // Spread data over memtable, L0, and deeper levels; mix in overwrites,
  // deletions, merge chains, and a snapshot taken mid-history.
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(Put("key" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());
  SequenceNumber snap = db_->GetSnapshot();
  for (int i = 0; i < 600; i += 5) {
    ASSERT_TRUE(Put("key" + std::to_string(i), "over" + std::to_string(i)).ok());
  }
  for (int i = 2; i < 600; i += 11) {
    ASSERT_TRUE(db_->Delete(WriteOptions(), "key" + std::to_string(i)).ok());
  }
  for (int i = 3; i < 600; i += 13) {
    ASSERT_TRUE(db_->Merge(WriteOptions(), "key" + std::to_string(i), "m").ok());
  }
  ASSERT_TRUE(db_->Flush().ok());

  std::vector<std::string> key_storage;
  for (int i = 0; i < 660; i += 3) {  // Includes absent keys >= 600.
    key_storage.push_back("key" + std::to_string(i));
  }
  std::vector<Slice> keys(key_storage.begin(), key_storage.end());

  for (bool use_snapshot : {false, true}) {
    ReadOptions batched, serial;
    batched.batched_io = true;
    serial.batched_io = false;
    if (use_snapshot) {
      batched.snapshot_seqno = snap;
      serial.snapshot_seqno = snap;
    }
    std::vector<std::string> bvals, svals;
    std::vector<Status> bstat = db_->MultiGet(batched, keys, &bvals);
    std::vector<Status> sstat = db_->MultiGet(serial, keys, &svals);
    ASSERT_EQ(keys.size(), bstat.size());
    ASSERT_EQ(keys.size(), sstat.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ(sstat[i].ok(), bstat[i].ok())
          << key_storage[i] << " snapshot=" << use_snapshot;
      EXPECT_EQ(sstat[i].IsNotFound(), bstat[i].IsNotFound())
          << key_storage[i] << " snapshot=" << use_snapshot;
      if (bstat[i].ok()) {
        EXPECT_EQ(svals[i], bvals[i])
            << key_storage[i] << " snapshot=" << use_snapshot;
      }
      if (!use_snapshot) {  // Per-key Get is the third witness.
        EXPECT_EQ(bstat[i].IsNotFound() ? "NOT_FOUND" : bvals[i],
                  Get(key_storage[i]))
            << key_storage[i];
      }
    }
  }
  db_->ReleaseSnapshot(snap);
}

TEST_F(DBTest, BatchedMultiGetMovesIoBatchStats) {
  OpenDB();
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(Put("key" + std::to_string(i), "val" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());
  db_->statistics()->Reset();

  // Cold cache: the batched path must issue at least one real MultiRead.
  std::vector<std::string> key_storage;
  for (int i = 0; i < 400; i += 25) {
    key_storage.push_back("key" + std::to_string(i));
  }
  std::vector<Slice> keys(key_storage.begin(), key_storage.end());
  std::vector<std::string> values;
  std::vector<Status> statuses = db_->MultiGet(ReadOptions(), keys, &values);
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(statuses[i].ok()) << key_storage[i];
  }

  const Statistics* stats = db_->statistics();
  EXPECT_GE(stats->io_batches.load(), 1u);
  EXPECT_GE(stats->io_batch_reads.load(), stats->io_batches.load());
  EXPECT_GT(stats->io_batch_bytes.load(), 0u);
  // Each batched block read still lands in the block cache: a second pass
  // resolves from cache without new submissions.
  const uint64_t batches_after_cold = stats->io_batches.load();
  statuses = db_->MultiGet(ReadOptions(), keys, &values);
  EXPECT_EQ(batches_after_cold, stats->io_batches.load());

  const std::string summary = db_->DebugLevelSummary();
  EXPECT_NE(std::string::npos, summary.find("batched io:")) << summary;
  EXPECT_NE(std::string::npos, summary.find("readahead")) << summary;
}

TEST_F(DBTest, ScanReadaheadMovesStatsAndPreservesContents) {
  OpenDB();
  std::string value(500, 'r');
  std::map<std::string, std::string> model;
  for (int i = 0; i < 400; ++i) {
    std::string key = "key" + std::to_string(1000 + i);
    model[key] = value;
    ASSERT_TRUE(Put(key, value).ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());
  db_->statistics()->Reset();

  // A scan with readahead disabled touches the buffer stats not at all.
  ReadOptions no_ra;
  no_ra.readahead_bytes = 0;
  no_ra.fill_cache = false;
  {
    std::map<std::string, std::string> seen;
    auto iter = db_->NewIterator(no_ra);
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      seen[iter->key().ToString()] = iter->value().ToString();
    }
    ASSERT_TRUE(iter->status().ok());
    EXPECT_EQ(model, seen);
  }
  EXPECT_EQ(0u, db_->statistics()->readahead_hits.load());
  EXPECT_EQ(0u, db_->statistics()->readahead_misses.load());

  // With readahead on, sequential block loads hit the prefetch buffer.
  ReadOptions with_ra;
  with_ra.readahead_bytes = 256 << 10;
  with_ra.fill_cache = false;
  {
    std::map<std::string, std::string> seen;
    auto iter = db_->NewIterator(with_ra);
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      seen[iter->key().ToString()] = iter->value().ToString();
    }
    ASSERT_TRUE(iter->status().ok());
    EXPECT_EQ(model, seen);
  }
  EXPECT_GT(db_->statistics()->readahead_hits.load(), 0u);
  EXPECT_GT(db_->statistics()->readahead_misses.load(), 0u);
  // The whole point: far fewer device trips than block loads.
  EXPECT_GT(db_->statistics()->readahead_hits.load(),
            db_->statistics()->readahead_misses.load());
}

// ---------------------------------------------------------------------------
// Learned per-SSTable indexes: fence and learned tables must be
// indistinguishable to every read path, and must coexist in one tree.
// ---------------------------------------------------------------------------

TEST_F(DBTest, MixedIndexTablesCoexistAcrossReopen) {
  // Phase 1: classic fence indexes.
  options_.index_type = IndexType::kBinarySearchFence;
  OpenDB();
  std::map<std::string, std::string> model;
  for (int i = 0; i < 300; ++i) {
    std::string key = "fence" + std::to_string(1000 + i);
    model[key] = "v" + std::to_string(i);
    ASSERT_TRUE(Put(key, model[key]).ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());

  // Phase 2: flip the knob and reopen. Old tables keep their fence indexes;
  // new flushes get learned ones. Both kinds serve reads from the same tree.
  options_.index_type = IndexType::kLearnedPLR;
  Reopen();
  for (int i = 0; i < 300; ++i) {
    std::string key = "learned" + std::to_string(1000 + i);
    model[key] = "w" + std::to_string(i);
    ASSERT_TRUE(Put(key, model[key]).ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());

  for (const auto& [key, value] : model) {
    EXPECT_EQ(value, Get(key)) << key;
  }
  EXPECT_EQ(model, Dump());

  const std::string summary = db_->DebugLevelSummary();
  EXPECT_NE(std::string::npos, summary.find("idx learned=")) << summary;
  EXPECT_NE(std::string::npos, summary.find("learned index: hits=")) << summary;

  // Compaction rewrites everything with the current knob: afterwards the
  // whole dataset is still intact behind learned indexes only.
  ASSERT_TRUE(db_->CompactRange().ok());
  EXPECT_EQ(model, Dump());
  EXPECT_GT(db_->statistics()->learned_index_hits.load(), 0u);
}

TEST_F(DBTest, LearnedMatchesFenceRandomizedSweep) {
  // Build the identical dataset under both index types and require every
  // read path -- Get, MultiGet, forward scan, seeks -- to agree exactly.
  Random rnd(20260809);
  std::map<std::string, std::string> model;
  std::vector<std::string> dataset_keys;
  for (int i = 0; i < 2500; ++i) {
    std::string key = "k" + std::to_string(rnd.Uniform(1000000));
    model[key] = "value" + std::to_string(i);
    dataset_keys.push_back(key);
  }
  std::vector<std::string> probe_keys;
  for (int i = 0; i < 600; ++i) {
    if (rnd.OneIn(3)) {
      probe_keys.push_back("k" + std::to_string(rnd.Uniform(1000000)));
    } else {
      probe_keys.push_back(dataset_keys[rnd.Uniform(dataset_keys.size())]);
    }
  }

  struct Answers {
    std::vector<std::string> gets;
    std::vector<std::string> multigets;
    std::map<std::string, std::string> scan;
    std::vector<std::string> seeks;
  };
  auto run = [&](IndexType index_type) {
    options_.index_type = index_type;
    db_.reset();
    EXPECT_TRUE(DestroyDB(options_, "/db").ok());
    OpenDB();
    for (const auto& [key, value] : model) {
      EXPECT_TRUE(Put(key, value).ok());
    }
    EXPECT_TRUE(db_->Flush().ok());
    EXPECT_TRUE(db_->WaitForBackgroundWork().ok());

    Answers out;
    for (const std::string& key : probe_keys) {
      out.gets.push_back(Get(key));
    }
    std::vector<Slice> keys(probe_keys.begin(), probe_keys.end());
    std::vector<std::string> values;
    std::vector<Status> statuses = db_->MultiGet(ReadOptions(), keys, &values);
    for (size_t i = 0; i < keys.size(); ++i) {
      out.multigets.push_back(statuses[i].ok() ? values[i]
                              : statuses[i].IsNotFound()
                                  ? "NOT_FOUND"
                                  : "ERROR: " + statuses[i].ToString());
    }
    out.scan = Dump();
    auto iter = db_->NewIterator(ReadOptions());
    for (size_t i = 0; i < probe_keys.size(); i += 7) {
      iter->Seek(probe_keys[i]);
      out.seeks.push_back(iter->Valid() ? iter->key().ToString() + "=" +
                                              iter->value().ToString()
                                        : "END");
    }
    EXPECT_TRUE(iter->status().ok());
    return out;
  };

  Answers fence = run(IndexType::kBinarySearchFence);
  Answers learned = run(IndexType::kLearnedPLR);
  EXPECT_EQ(fence.gets, learned.gets);
  EXPECT_EQ(fence.multigets, learned.multigets);
  EXPECT_EQ(fence.scan, learned.scan);
  EXPECT_EQ(fence.seeks, learned.seeks);
  EXPECT_EQ(model, learned.scan);
  EXPECT_GT(db_->statistics()->learned_index_hits.load(), 0u);
}

TEST_F(DBTest, PerLevelIndexTypeOverride) {
  // L0 keeps cheap-to-build fences (the per-level override); every deeper
  // level falls back to the global knob and gets learned indexes.
  options_.index_type = IndexType::kLearnedPLR;
  options_.index_type_per_level = {IndexType::kBinarySearchFence};
  OpenDB();
  std::map<std::string, std::string> model;
  for (int i = 0; i < 600; ++i) {
    std::string key = "pl" + std::to_string(100000 + i);
    model[key] = "v" + std::to_string(i);
    ASSERT_TRUE(Put(key, model[key]).ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->CompactRange().ok());
  EXPECT_EQ(model, Dump());
  for (const auto& [key, value] : model) {
    ASSERT_EQ(value, Get(key)) << key;
  }
  // Compaction pushed data to level >= 1, which the override maps to
  // learned indexes.
  EXPECT_GT(db_->statistics()->learned_index_hits.load() +
                db_->statistics()->learned_index_fallbacks.load(),
            0u);
}

}  // namespace
}  // namespace lsmlab
