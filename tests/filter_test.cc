#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "filter/filter_policy.h"
#include "util/random.h"

namespace lsmlab {
namespace {

enum class PolicyKind { kBloom, kBlockedBloom, kCuckoo };

std::shared_ptr<const FilterPolicy> MakePolicy(PolicyKind kind,
                                               double bits_per_key) {
  switch (kind) {
    case PolicyKind::kBloom:
      return NewBloomFilterPolicy(bits_per_key);
    case PolicyKind::kBlockedBloom:
      return NewBlockedBloomFilterPolicy(bits_per_key);
    case PolicyKind::kCuckoo:
      return NewCuckooFilterPolicy(12);
  }
  return nullptr;
}

class FilterPolicyTest : public ::testing::TestWithParam<PolicyKind> {
 protected:
  std::string BuildFilter(const std::vector<std::string>& keys,
                          double bits_per_key = 10.0) {
    policy_ = MakePolicy(GetParam(), bits_per_key);
    std::vector<Slice> slices(keys.begin(), keys.end());
    std::string filter;
    policy_->CreateFilter(slices.data(), static_cast<int>(slices.size()),
                          &filter);
    return filter;
  }

  bool Matches(const std::string& key, const std::string& filter) {
    return policy_->KeyMayMatch(key, filter);
  }

  std::shared_ptr<const FilterPolicy> policy_;
};

TEST_P(FilterPolicyTest, NoFalseNegatives) {
  std::vector<std::string> keys;
  for (int i = 0; i < 5000; ++i) {
    keys.push_back("key-" + std::to_string(i));
  }
  std::string filter = BuildFilter(keys);
  for (const auto& key : keys) {
    EXPECT_TRUE(Matches(key, filter)) << "false negative for " << key;
  }
}

TEST_P(FilterPolicyTest, FalsePositiveRateIsBounded) {
  std::vector<std::string> keys;
  for (int i = 0; i < 10000; ++i) {
    keys.push_back("present-" + std::to_string(i));
  }
  std::string filter = BuildFilter(keys, 10.0);

  int false_positives = 0;
  const int kProbes = 10000;
  for (int i = 0; i < kProbes; ++i) {
    if (Matches("absent-" + std::to_string(i), filter)) {
      ++false_positives;
    }
  }
  double fpr = static_cast<double>(false_positives) / kProbes;
  // 10 bits/key Bloom is ~1%; blocked Bloom and 12-bit cuckoo are a little
  // worse. 5% is a generous common ceiling that still catches breakage.
  EXPECT_LT(fpr, 0.05) << "fpr=" << fpr;
}

TEST_P(FilterPolicyTest, EmptyKeySupported) {
  std::string filter = BuildFilter({""});
  EXPECT_TRUE(Matches("", filter));
}

TEST_P(FilterPolicyTest, SingleKeyFilter) {
  std::string filter = BuildFilter({"lonely"});
  EXPECT_TRUE(Matches("lonely", filter));
  int hits = 0;
  for (int i = 0; i < 1000; ++i) {
    if (Matches("other-" + std::to_string(i), filter)) {
      ++hits;
    }
  }
  EXPECT_LT(hits, 200);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, FilterPolicyTest,
                         ::testing::Values(PolicyKind::kBloom,
                                           PolicyKind::kBlockedBloom,
                                           PolicyKind::kCuckoo),
                         [](const ::testing::TestParamInfo<PolicyKind>& info) {
                           switch (info.param) {
                             case PolicyKind::kBloom:
                               return "Bloom";
                             case PolicyKind::kBlockedBloom:
                               return "BlockedBloom";
                             case PolicyKind::kCuckoo:
                               return "Cuckoo";
                           }
                           return "Unknown";
                         });

TEST(BloomFilterTest, FprImprovesWithMoreBits) {
  Random rnd(42);
  std::vector<std::string> keys;
  for (int i = 0; i < 20000; ++i) {
    keys.push_back("k" + std::to_string(i));
  }
  std::vector<Slice> slices(keys.begin(), keys.end());

  auto measure_fpr = [&](double bits_per_key) {
    auto policy = NewBloomFilterPolicy(bits_per_key);
    std::string filter;
    policy->CreateFilter(slices.data(), static_cast<int>(slices.size()),
                         &filter);
    int fp = 0;
    const int kProbes = 20000;
    for (int i = 0; i < kProbes; ++i) {
      if (policy->KeyMayMatch("absent" + std::to_string(i), filter)) {
        ++fp;
      }
    }
    return static_cast<double>(fp) / kProbes;
  };

  double fpr2 = measure_fpr(2.0);
  double fpr5 = measure_fpr(5.0);
  double fpr10 = measure_fpr(10.0);
  // Monotone improvement is the foundation of the Monkey allocation logic.
  EXPECT_GT(fpr2, fpr5);
  EXPECT_GT(fpr5, fpr10);
  EXPECT_GT(fpr2, 0.1);   // ~25% expected at 2 bits.
  EXPECT_LT(fpr10, 0.03);  // ~1% expected at 10 bits.
}

TEST(BloomFilterTest, FilterSizeTracksBitsPerKey) {
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; ++i) {
    keys.push_back("k" + std::to_string(i));
  }
  std::vector<Slice> slices(keys.begin(), keys.end());

  std::string f4, f16;
  NewBloomFilterPolicy(4.0)->CreateFilter(slices.data(), 1000, &f4);
  NewBloomFilterPolicy(16.0)->CreateFilter(slices.data(), 1000, &f16);
  EXPECT_NEAR(static_cast<double>(f16.size()) / f4.size(), 4.0, 0.5);
}

TEST(CuckooFilterTest, HighLoadStillBuilds) {
  // Force a dense build; displacement (or growth fallback) must succeed.
  std::vector<std::string> keys;
  for (int i = 0; i < 100000; ++i) {
    keys.push_back("dense" + std::to_string(i));
  }
  std::vector<Slice> slices(keys.begin(), keys.end());
  auto policy = NewCuckooFilterPolicy(12);
  std::string filter;
  policy->CreateFilter(slices.data(), static_cast<int>(slices.size()),
                       &filter);
  for (int i = 0; i < 100000; i += 997) {
    EXPECT_TRUE(policy->KeyMayMatch(keys[static_cast<size_t>(i)], filter));
  }
}

}  // namespace
}  // namespace lsmlab
