#include <gtest/gtest.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "io/counting_env.h"
#include "io/env.h"
#include "io/latency_env.h"
#include "io/mem_env.h"
#include "io/wal_reader.h"
#include "io/wal_writer.h"
#include "util/clock.h"
#include "util/random.h"

namespace lsmlab {
namespace {

// ----------------------------------------------------------------- Env -----

class EnvTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    if (GetParam()) {
      env_ = &mem_env_;
      dir_ = "/envtest";
    } else {
      env_ = Env::Default();
      // Unique per process: ctest runs each discovered case as its own
      // process, possibly in parallel, and a shared directory lets one
      // case's TearDown delete files another case is still reading.
      dir_ = ::testing::TempDir() + "lsmlab_env_test_" +
             std::to_string(::getpid());
    }
    ASSERT_TRUE(env_->CreateDir(dir_).ok());
  }

  void TearDown() override {
    std::vector<std::string> children;
    if (env_->GetChildren(dir_, &children).ok()) {
      for (const auto& child : children) {
        (void)env_->RemoveFile(dir_ + "/" + child);
      }
    }
    (void)env_->RemoveDir(dir_);
  }

  MemEnv mem_env_;
  Env* env_ = nullptr;
  std::string dir_;
};

TEST_P(EnvTest, WriteReadRoundTrip) {
  const std::string fname = dir_ + "/f1";
  ASSERT_TRUE(WriteStringToFile(env_, "hello world", fname).ok());

  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_, fname, &contents).ok());
  EXPECT_EQ("hello world", contents);

  uint64_t size = 0;
  ASSERT_TRUE(env_->GetFileSize(fname, &size).ok());
  EXPECT_EQ(11u, size);
}

TEST_P(EnvTest, RandomAccessReads) {
  const std::string fname = dir_ + "/f2";
  ASSERT_TRUE(WriteStringToFile(env_, "0123456789", fname).ok());

  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env_->NewRandomAccessFile(fname, &file).ok());
  char scratch[16];
  Slice result;
  ASSERT_TRUE(file->Read(3, 4, &result, scratch).ok());
  EXPECT_EQ("3456", result.ToString());
  // Read past EOF yields short read.
  ASSERT_TRUE(file->Read(8, 10, &result, scratch).ok());
  EXPECT_EQ("89", result.ToString());
  ASSERT_TRUE(file->Read(100, 10, &result, scratch).ok());
  EXPECT_TRUE(result.empty());
}

TEST_P(EnvTest, MissingFileIsNotFound) {
  std::unique_ptr<SequentialFile> f;
  Status s = env_->NewSequentialFile(dir_ + "/missing", &f);
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();
  EXPECT_FALSE(env_->FileExists(dir_ + "/missing"));
}

TEST_P(EnvTest, GetChildrenListsFiles) {
  ASSERT_TRUE(WriteStringToFile(env_, "a", dir_ + "/a").ok());
  ASSERT_TRUE(WriteStringToFile(env_, "b", dir_ + "/b").ok());
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren(dir_, &children).ok());
  EXPECT_EQ(2u, children.size());
}

TEST_P(EnvTest, RenameReplacesTarget) {
  ASSERT_TRUE(WriteStringToFile(env_, "source", dir_ + "/src").ok());
  ASSERT_TRUE(WriteStringToFile(env_, "old", dir_ + "/dst").ok());
  ASSERT_TRUE(env_->RenameFile(dir_ + "/src", dir_ + "/dst").ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_, dir_ + "/dst", &contents).ok());
  EXPECT_EQ("source", contents);
  EXPECT_FALSE(env_->FileExists(dir_ + "/src"));
}

TEST_P(EnvTest, RemoveFileDeletes) {
  ASSERT_TRUE(WriteStringToFile(env_, "x", dir_ + "/x").ok());
  ASSERT_TRUE(env_->RemoveFile(dir_ + "/x").ok());
  EXPECT_FALSE(env_->FileExists(dir_ + "/x"));
  EXPECT_TRUE(env_->RemoveFile(dir_ + "/x").IsNotFound());
}

INSTANTIATE_TEST_SUITE_P(MemAndPosix, EnvTest, ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "MemEnv" : "PosixEnv";
                         });

TEST_P(EnvTest, RandomRWFileReadWrite) {
  const std::string fname = dir_ + "/rw";
  std::unique_ptr<RandomRWFile> file;
  ASSERT_TRUE(env_->NewRandomRWFile(fname, &file).ok());

  // Write at scattered offsets, including extending the file.
  ASSERT_TRUE(file->Write(0, "0123456789").ok());
  ASSERT_TRUE(file->Write(4, "XY").ok());
  ASSERT_TRUE(file->Write(20, "tail").ok());
  ASSERT_TRUE(file->Sync().ok());

  char scratch[32];
  Slice result;
  ASSERT_TRUE(file->Read(0, 10, &result, scratch).ok());
  EXPECT_EQ("0123XY6789", result.ToString());
  ASSERT_TRUE(file->Read(20, 4, &result, scratch).ok());
  EXPECT_EQ("tail", result.ToString());
  // The gap [10,20) reads as zero bytes.
  ASSERT_TRUE(file->Read(10, 10, &result, scratch).ok());
  EXPECT_EQ(std::string(10, '\0'), result.ToString());
}

TEST_P(EnvTest, RandomRWFilePreservesExistingContents) {
  const std::string fname = dir_ + "/rw2";
  ASSERT_TRUE(WriteStringToFile(env_, "persistent", fname).ok());
  // Unlike NewWritableFile, reopening read-write must not truncate.
  std::unique_ptr<RandomRWFile> file;
  ASSERT_TRUE(env_->NewRandomRWFile(fname, &file).ok());
  char scratch[32];
  Slice result;
  ASSERT_TRUE(file->Read(0, 10, &result, scratch).ok());
  EXPECT_EQ("persistent", result.ToString());
  ASSERT_TRUE(file->Write(0, "P").ok());
  ASSERT_TRUE(file->Read(0, 10, &result, scratch).ok());
  EXPECT_EQ("Persistent", result.ToString());
}

TEST(MemEnvTest, OpenReaderSurvivesRemove) {
  // POSIX unlink semantics: a compaction can delete an input file while an
  // iterator still reads it.
  MemEnv env;
  ASSERT_TRUE(WriteStringToFile(&env, "still here", "/f").ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env.NewRandomAccessFile("/f", &file).ok());
  ASSERT_TRUE(env.RemoveFile("/f").ok());
  char scratch[16];
  Slice result;
  ASSERT_TRUE(file->Read(0, 10, &result, scratch).ok());
  EXPECT_EQ("still here", result.ToString());
}

TEST(MemEnvTest, TotalFileBytes) {
  MemEnv env;
  EXPECT_EQ(0u, env.TotalFileBytes());
  ASSERT_TRUE(WriteStringToFile(&env, "12345", "/a").ok());
  ASSERT_TRUE(WriteStringToFile(&env, "123", "/b").ok());
  EXPECT_EQ(8u, env.TotalFileBytes());
}

// ---------------------------------------------------------- CountingEnv ----

TEST(CountingEnvTest, CountsReadsAndWrites) {
  MemEnv base;
  CountingEnv env(&base);
  ASSERT_TRUE(WriteStringToFile(&env, "hello world!", "/f").ok());

  IoStats stats = env.GetStats();
  EXPECT_EQ(12u, stats.bytes_written);
  EXPECT_EQ(1u, stats.write_ops);
  EXPECT_EQ(1u, stats.files_created);
  EXPECT_EQ(1u, stats.syncs);

  std::string contents;
  ASSERT_TRUE(ReadFileToString(&env, "/f", &contents).ok());
  stats = env.GetStats();
  EXPECT_EQ(12u, stats.bytes_read);
  EXPECT_GE(stats.read_ops, 1u);
}

TEST(CountingEnvTest, ResetClearsCounters) {
  MemEnv base;
  CountingEnv env(&base);
  ASSERT_TRUE(WriteStringToFile(&env, "data", "/f").ok());
  env.ResetStats();
  IoStats stats = env.GetStats();
  EXPECT_EQ(0u, stats.bytes_written);
  EXPECT_EQ(0u, stats.files_created);
}

TEST(CountingEnvTest, WriteAmplificationHelper) {
  IoStats stats;
  stats.bytes_written = 400;
  EXPECT_DOUBLE_EQ(4.0, stats.WriteAmplification(100));
  EXPECT_DOUBLE_EQ(0.0, stats.WriteAmplification(0));
}

// ----------------------------------------------------------- LatencyEnv ----

TEST(LatencyEnvTest, ChargesVirtualTime) {
  MemEnv base;
  MockClock clock;
  DeviceModel model;
  model.per_op_latency_micros = 100;
  model.bandwidth_bytes_per_sec = 1000000;  // 1 MB/s -> 1 us per byte.
  LatencyEnv env(&base, model, &clock);

  ASSERT_TRUE(WriteStringToFile(&env, std::string(1000, 'x'), "/f").ok());
  // One write of 1000 bytes (100us fixed + 1000us transfer) plus the sync,
  // which costs one zero-byte device op (100us) — the cost group commit
  // amortizes across writers.
  EXPECT_EQ(1200u, clock.NowMicros());

  std::string contents;
  ASSERT_TRUE(ReadFileToString(&env, "/f", &contents).ok());
  EXPECT_EQ(1000u, contents.size());
  EXPECT_GE(clock.NowMicros(), 2200u);
}

TEST(LatencyEnvTest, DevicePresetsDiffer) {
  EXPECT_GT(DeviceModel::Hdd().per_op_latency_micros,
            DeviceModel::Ssd().per_op_latency_micros);
  EXPECT_GT(DeviceModel::Nvme().bandwidth_bytes_per_sec,
            DeviceModel::Ssd().bandwidth_bytes_per_sec);
}

// ------------------------------------------------------------------ WAL ----

class WalTest : public ::testing::Test {
 protected:
  struct CountingReporter : public wal::Reader::Reporter {
    size_t dropped_bytes = 0;
    int corruption_reports = 0;
    void Corruption(size_t bytes, const Status&) override {
      dropped_bytes += bytes;
      ++corruption_reports;
    }
  };

  // Writes `records` through wal::Writer and reads them back.
  std::vector<std::string> RoundTrip(const std::vector<std::string>& records) {
    WriteAll(records);
    return ReadAll();
  }

  void WriteAll(const std::vector<std::string>& records) {
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(env_.NewWritableFile("/wal", &file).ok());
    wal::Writer writer(file.get());
    for (const auto& r : records) {
      EXPECT_TRUE(writer.AddRecord(r).ok());
    }
    EXPECT_TRUE(file->Close().ok());
  }

  std::vector<std::string> ReadAll() {
    std::unique_ptr<SequentialFile> file;
    EXPECT_TRUE(env_.NewSequentialFile("/wal", &file).ok());
    wal::Reader reader(file.get(), &reporter_);
    std::vector<std::string> out;
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch)) {
      out.push_back(record.ToString());
    }
    return out;
  }

  void CorruptByte(size_t offset) {
    std::string contents;
    EXPECT_TRUE(ReadFileToString(&env_, "/wal", &contents).ok());
    contents[offset] ^= 0x55;
    EXPECT_TRUE(WriteStringToFile(&env_, contents, "/wal").ok());
  }

  void TruncateTo(size_t size) {
    std::string contents;
    EXPECT_TRUE(ReadFileToString(&env_, "/wal", &contents).ok());
    contents.resize(size);
    EXPECT_TRUE(WriteStringToFile(&env_, contents, "/wal").ok());
  }

  MemEnv env_;
  CountingReporter reporter_;
};

TEST_F(WalTest, EmptyLog) {
  WriteAll({});
  EXPECT_TRUE(ReadAll().empty());
}

TEST_F(WalTest, SmallRecords) {
  auto out = RoundTrip({"alpha", "beta", "", "gamma"});
  ASSERT_EQ(4u, out.size());
  EXPECT_EQ("alpha", out[0]);
  EXPECT_EQ("beta", out[1]);
  EXPECT_EQ("", out[2]);
  EXPECT_EQ("gamma", out[3]);
  EXPECT_EQ(0, reporter_.corruption_reports);
}

TEST_F(WalTest, RecordSpanningBlocks) {
  // Records larger than one 32KB block must fragment and reassemble.
  std::string big(100000, 'z');
  std::string medium(40000, 'y');
  auto out = RoundTrip({big, medium, "tail"});
  ASSERT_EQ(3u, out.size());
  EXPECT_EQ(big, out[0]);
  EXPECT_EQ(medium, out[1]);
  EXPECT_EQ("tail", out[2]);
}

TEST_F(WalTest, ManyRandomSizedRecords) {
  Random rnd(301);
  std::vector<std::string> records;
  for (int i = 0; i < 500; ++i) {
    records.push_back(std::string(rnd.Skewed(16), static_cast<char>('a' + i % 26)));
  }
  auto out = RoundTrip(records);
  ASSERT_EQ(records.size(), out.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i], out[i]) << "record " << i;
  }
}

TEST_F(WalTest, ChecksumCorruptionDetected) {
  WriteAll({"first-record-payload", "second-record-payload"});
  CorruptByte(wal::kHeaderSize + 2);  // Inside the first record's payload.
  auto out = ReadAll();
  EXPECT_GE(reporter_.corruption_reports, 1);
  // The first record is dropped; replay resumes at a safe point.
  for (const auto& r : out) {
    EXPECT_NE("first-record-payload", r);
  }
}

TEST_F(WalTest, TruncatedTailIsSilentlyIgnored) {
  WriteAll({"one", "two", "three"});
  uint64_t size;
  ASSERT_TRUE(env_.GetFileSize("/wal", &size).ok());
  TruncateTo(size - 2);  // Simulates a crash mid-write of the last record.
  auto out = ReadAll();
  ASSERT_EQ(2u, out.size());
  EXPECT_EQ("one", out[0]);
  EXPECT_EQ("two", out[1]);
  EXPECT_EQ(0, reporter_.corruption_reports);  // A torn tail is not corruption.
}

TEST_F(WalTest, ReopenAndAppendSeparateWriters) {
  // The manifest is appended to by a fresh Writer after reopen; records from
  // both writers must replay (fresh writer starts at block 0 of its view,
  // so this test uses separate files to model rotation instead).
  WriteAll({"epoch1-a", "epoch1-b"});
  auto out = ReadAll();
  ASSERT_EQ(2u, out.size());
}

}  // namespace
}  // namespace lsmlab
