#include <gtest/gtest.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "db/filename.h"
#include "io/counting_env.h"
#include "io/env.h"
#include "io/fault_injection_env.h"
#include "io/latency_env.h"
#include "io/mem_env.h"
#include "io/readahead_file.h"
#include "io/wal_reader.h"
#include "io/wal_writer.h"
#include "util/clock.h"
#include "util/random.h"

namespace lsmlab {
namespace {

// ----------------------------------------------------------------- Env -----

class EnvTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    if (GetParam()) {
      env_ = &mem_env_;
      dir_ = "/envtest";
    } else {
      env_ = Env::Default();
      // Unique per process: ctest runs each discovered case as its own
      // process, possibly in parallel, and a shared directory lets one
      // case's TearDown delete files another case is still reading.
      dir_ = ::testing::TempDir() + "lsmlab_env_test_" +
             std::to_string(::getpid());
    }
    ASSERT_TRUE(env_->CreateDir(dir_).ok());
  }

  void TearDown() override {
    std::vector<std::string> children;
    if (env_->GetChildren(dir_, &children).ok()) {
      for (const auto& child : children) {
        (void)env_->RemoveFile(dir_ + "/" + child);
      }
    }
    (void)env_->RemoveDir(dir_);
  }

  MemEnv mem_env_;
  Env* env_ = nullptr;
  std::string dir_;
};

TEST_P(EnvTest, WriteReadRoundTrip) {
  const std::string fname = dir_ + "/f1";
  ASSERT_TRUE(WriteStringToFile(env_, "hello world", fname).ok());

  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_, fname, &contents).ok());
  EXPECT_EQ("hello world", contents);

  uint64_t size = 0;
  ASSERT_TRUE(env_->GetFileSize(fname, &size).ok());
  EXPECT_EQ(11u, size);
}

TEST_P(EnvTest, RandomAccessReads) {
  const std::string fname = dir_ + "/f2";
  ASSERT_TRUE(WriteStringToFile(env_, "0123456789", fname).ok());

  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env_->NewRandomAccessFile(fname, &file).ok());
  char scratch[16];
  Slice result;
  ASSERT_TRUE(file->Read(3, 4, &result, scratch).ok());
  EXPECT_EQ("3456", result.ToString());
  // Read past EOF yields short read.
  ASSERT_TRUE(file->Read(8, 10, &result, scratch).ok());
  EXPECT_EQ("89", result.ToString());
  ASSERT_TRUE(file->Read(100, 10, &result, scratch).ok());
  EXPECT_TRUE(result.empty());
}

TEST_P(EnvTest, MissingFileIsNotFound) {
  std::unique_ptr<SequentialFile> f;
  Status s = env_->NewSequentialFile(dir_ + "/missing", &f);
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();
  EXPECT_FALSE(env_->FileExists(dir_ + "/missing"));
}

TEST_P(EnvTest, GetChildrenListsFiles) {
  ASSERT_TRUE(WriteStringToFile(env_, "a", dir_ + "/a").ok());
  ASSERT_TRUE(WriteStringToFile(env_, "b", dir_ + "/b").ok());
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren(dir_, &children).ok());
  EXPECT_EQ(2u, children.size());
}

TEST_P(EnvTest, RenameReplacesTarget) {
  ASSERT_TRUE(WriteStringToFile(env_, "source", dir_ + "/src").ok());
  ASSERT_TRUE(WriteStringToFile(env_, "old", dir_ + "/dst").ok());
  ASSERT_TRUE(env_->RenameFile(dir_ + "/src", dir_ + "/dst").ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_, dir_ + "/dst", &contents).ok());
  EXPECT_EQ("source", contents);
  EXPECT_FALSE(env_->FileExists(dir_ + "/src"));
}

TEST_P(EnvTest, RemoveFileDeletes) {
  ASSERT_TRUE(WriteStringToFile(env_, "x", dir_ + "/x").ok());
  ASSERT_TRUE(env_->RemoveFile(dir_ + "/x").ok());
  EXPECT_FALSE(env_->FileExists(dir_ + "/x"));
  EXPECT_TRUE(env_->RemoveFile(dir_ + "/x").IsNotFound());
}

INSTANTIATE_TEST_SUITE_P(MemAndPosix, EnvTest, ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "MemEnv" : "PosixEnv";
                         });

TEST_P(EnvTest, RandomRWFileReadWrite) {
  const std::string fname = dir_ + "/rw";
  std::unique_ptr<RandomRWFile> file;
  ASSERT_TRUE(env_->NewRandomRWFile(fname, &file).ok());

  // Write at scattered offsets, including extending the file.
  ASSERT_TRUE(file->Write(0, "0123456789").ok());
  ASSERT_TRUE(file->Write(4, "XY").ok());
  ASSERT_TRUE(file->Write(20, "tail").ok());
  ASSERT_TRUE(file->Sync().ok());

  char scratch[32];
  Slice result;
  ASSERT_TRUE(file->Read(0, 10, &result, scratch).ok());
  EXPECT_EQ("0123XY6789", result.ToString());
  ASSERT_TRUE(file->Read(20, 4, &result, scratch).ok());
  EXPECT_EQ("tail", result.ToString());
  // The gap [10,20) reads as zero bytes.
  ASSERT_TRUE(file->Read(10, 10, &result, scratch).ok());
  EXPECT_EQ(std::string(10, '\0'), result.ToString());
}

TEST_P(EnvTest, RandomRWFilePreservesExistingContents) {
  const std::string fname = dir_ + "/rw2";
  ASSERT_TRUE(WriteStringToFile(env_, "persistent", fname).ok());
  // Unlike NewWritableFile, reopening read-write must not truncate.
  std::unique_ptr<RandomRWFile> file;
  ASSERT_TRUE(env_->NewRandomRWFile(fname, &file).ok());
  char scratch[32];
  Slice result;
  ASSERT_TRUE(file->Read(0, 10, &result, scratch).ok());
  EXPECT_EQ("persistent", result.ToString());
  ASSERT_TRUE(file->Write(0, "P").ok());
  ASSERT_TRUE(file->Read(0, 10, &result, scratch).ok());
  EXPECT_EQ("Persistent", result.ToString());
}

TEST(MemEnvTest, OpenReaderSurvivesRemove) {
  // POSIX unlink semantics: a compaction can delete an input file while an
  // iterator still reads it.
  MemEnv env;
  ASSERT_TRUE(WriteStringToFile(&env, "still here", "/f").ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env.NewRandomAccessFile("/f", &file).ok());
  ASSERT_TRUE(env.RemoveFile("/f").ok());
  char scratch[16];
  Slice result;
  ASSERT_TRUE(file->Read(0, 10, &result, scratch).ok());
  EXPECT_EQ("still here", result.ToString());
}

TEST(MemEnvTest, TotalFileBytes) {
  MemEnv env;
  EXPECT_EQ(0u, env.TotalFileBytes());
  ASSERT_TRUE(WriteStringToFile(&env, "12345", "/a").ok());
  ASSERT_TRUE(WriteStringToFile(&env, "123", "/b").ok());
  EXPECT_EQ(8u, env.TotalFileBytes());
}

// ---------------------------------------------------------- CountingEnv ----

TEST(CountingEnvTest, CountsReadsAndWrites) {
  MemEnv base;
  CountingEnv env(&base);
  ASSERT_TRUE(WriteStringToFile(&env, "hello world!", "/f").ok());

  IoStats stats = env.GetStats();
  EXPECT_EQ(12u, stats.bytes_written);
  EXPECT_EQ(1u, stats.write_ops);
  EXPECT_EQ(1u, stats.files_created);
  EXPECT_EQ(1u, stats.syncs);

  std::string contents;
  ASSERT_TRUE(ReadFileToString(&env, "/f", &contents).ok());
  stats = env.GetStats();
  EXPECT_EQ(12u, stats.bytes_read);
  EXPECT_GE(stats.read_ops, 1u);
}

TEST(CountingEnvTest, ResetClearsCounters) {
  MemEnv base;
  CountingEnv env(&base);
  ASSERT_TRUE(WriteStringToFile(&env, "data", "/f").ok());
  env.ResetStats();
  IoStats stats = env.GetStats();
  EXPECT_EQ(0u, stats.bytes_written);
  EXPECT_EQ(0u, stats.files_created);
}

TEST(CountingEnvTest, WriteAmplificationHelper) {
  IoStats stats;
  stats.bytes_written = 400;
  EXPECT_DOUBLE_EQ(4.0, stats.WriteAmplification(100));
  EXPECT_DOUBLE_EQ(0.0, stats.WriteAmplification(0));
}

// ----------------------------------------------------------- LatencyEnv ----

TEST(LatencyEnvTest, ChargesVirtualTime) {
  MemEnv base;
  MockClock clock;
  DeviceModel model;
  model.per_op_latency_micros = 100;
  model.bandwidth_bytes_per_sec = 1000000;  // 1 MB/s -> 1 us per byte.
  LatencyEnv env(&base, model, &clock);

  ASSERT_TRUE(WriteStringToFile(&env, std::string(1000, 'x'), "/f").ok());
  // One write of 1000 bytes (100us fixed + 1000us transfer) plus the sync,
  // which costs one zero-byte device op (100us) — the cost group commit
  // amortizes across writers.
  EXPECT_EQ(1200u, clock.NowMicros());

  std::string contents;
  ASSERT_TRUE(ReadFileToString(&env, "/f", &contents).ok());
  EXPECT_EQ(1000u, contents.size());
  EXPECT_GE(clock.NowMicros(), 2200u);
}

TEST(LatencyEnvTest, DevicePresetsDiffer) {
  EXPECT_GT(DeviceModel::Hdd().per_op_latency_micros,
            DeviceModel::Ssd().per_op_latency_micros);
  EXPECT_GT(DeviceModel::Nvme().bandwidth_bytes_per_sec,
            DeviceModel::Ssd().bandwidth_bytes_per_sec);
}

// --------------------------------------------------- FaultInjectionEnv ----

class FaultInjectionEnvTest : public ::testing::Test {
 protected:
  // Appends `data` to `fname`, optionally syncing, and returns the combined
  // append/sync status (first failure wins).
  Status Append(const std::string& fname, const std::string& data,
                bool sync) {
    std::unique_ptr<WritableFile> file;
    Status s = env_.NewWritableFile(fname, &file);
    if (!s.ok()) {
      return s;
    }
    s = file->Append(data);
    if (s.ok() && sync) {
      s = file->Sync();
    }
    Status c = file->Close();
    return s.ok() ? c : s;
  }

  std::string Contents(const std::string& fname) {
    std::string data;
    EXPECT_TRUE(ReadFileToString(&env_, fname, &data).ok());
    return data;
  }

  MemEnv base_;
  FaultInjectionEnv env_{&base_, /*seed=*/12345};
};

TEST_F(FaultInjectionEnvTest, DropUnsyncedDataKeepsSyncedPrefix) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_.NewWritableFile("/000001.log", &file).ok());
  ASSERT_TRUE(file->Append("durable").ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Append("volatile").ok());  // Never synced.
  ASSERT_TRUE(file->Close().ok());             // Close implies no durability.
  file.reset();

  // Before the crash the DB can read its own unsynced bytes (write-through).
  EXPECT_EQ("durablevolatile", Contents("/000001.log"));

  ASSERT_TRUE(env_.DropUnsyncedData().ok());
  EXPECT_EQ("durable", Contents("/000001.log"));
}

TEST_F(FaultInjectionEnvTest, DropUnsyncedDataDeletesNeverSyncedFiles) {
  ASSERT_TRUE(Append("/000002.sst", "never synced", /*sync=*/false).ok());
  ASSERT_TRUE(Append("/000003.sst", "synced", /*sync=*/true).ok());

  ASSERT_TRUE(env_.DropUnsyncedData().ok());
  EXPECT_FALSE(env_.FileExists("/000002.sst"));
  EXPECT_EQ("synced", Contents("/000003.sst"));
}

TEST_F(FaultInjectionEnvTest, TornTailNeverPersistsNeverSyncedFile) {
  // A never-synced file's directory entry was never fsynced either: after a
  // crash the whole file is gone. A torn-tail fragment must not keep it
  // alive — even with tearing forced on every unsynced tail.
  ASSERT_TRUE(Append("/000042.sst", "never synced", /*sync=*/false).ok());
  ASSERT_TRUE(env_.DropUnsyncedData(/*torn_tail_one_in=*/1).ok());
  EXPECT_FALSE(env_.FileExists("/000042.sst"));
}

TEST_F(FaultInjectionEnvTest, TornTailIsDeterministicForASeed) {
  auto run_once = [](uint64_t seed) {
    MemEnv base;
    FaultInjectionEnv env(&base, seed);
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(env.NewWritableFile("/000004.log", &file).ok());
    EXPECT_TRUE(file->Append("synced-part|").ok());
    EXPECT_TRUE(file->Sync().ok());
    EXPECT_TRUE(file->Append("this tail will tear somewhere").ok());
    file.reset();
    EXPECT_TRUE(env.DropUnsyncedData(/*torn_tail_one_in=*/1).ok());
    std::string data;
    EXPECT_TRUE(ReadFileToString(&env, "/000004.log", &data).ok());
    return data;
  };

  const std::string a = run_once(99);
  const std::string b = run_once(99);
  EXPECT_EQ(a, b);  // Reproducible from the seed.
  // The torn tail is a strict extension of the synced prefix with a
  // corrupted final byte — never a rewind of synced data.
  EXPECT_EQ(0u, a.find("synced-part|"));
  EXPECT_GT(a.size(), std::string("synced-part|").size());
  EXPECT_NE(a, std::string("synced-part|") + "this tail will tear somewhere");
}

TEST_F(FaultInjectionEnvTest, RulesFilterByFileKind) {
  FaultRule rule;
  rule.file_kinds = kFaultWal;
  rule.ops = kFaultOpAppend | kFaultOpSync;
  rule.one_in = 1;  // Every matching op fails unconditionally.
  env_.AddRule(rule);

  EXPECT_FALSE(Append("/000005.log", "wal write", /*sync=*/true).ok());
  EXPECT_TRUE(Append("/000006.sst", "table write", /*sync=*/true).ok());
  EXPECT_TRUE(Append("/MANIFEST-000007", "edit", /*sync=*/true).ok());
  EXPECT_GE(env_.injected_faults(), 1u);
}

TEST_F(FaultInjectionEnvTest, ScriptedRuleFiresAtExactOpIndex) {
  FaultRule rule;
  rule.file_kinds = kFaultTable;
  rule.ops = kFaultOpAppend;
  rule.at_op_index = 2;  // Third table append fails; all others succeed.
  env_.AddRule(rule);

  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_.NewWritableFile("/000008.sst", &file).ok());
  EXPECT_TRUE(file->Append("a").ok());
  EXPECT_TRUE(file->Append("b").ok());
  EXPECT_FALSE(file->Append("c").ok());
  EXPECT_TRUE(file->Append("d").ok());
  EXPECT_EQ(1u, env_.injected_faults());
}

TEST_F(FaultInjectionEnvTest, TransientRuleStopsAfterMaxFailures) {
  FaultRule rule;
  rule.file_kinds = kFaultAnyFile;
  rule.ops = kFaultOpSync;
  rule.one_in = 1;  // Every sync...
  rule.max_failures = 2;  // ...for the first two.
  env_.AddRule(rule);

  EXPECT_FALSE(Append("/000009.sst", "x", /*sync=*/true).ok());
  EXPECT_FALSE(Append("/000010.sst", "x", /*sync=*/true).ok());
  EXPECT_TRUE(Append("/000011.sst", "x", /*sync=*/true).ok());
  EXPECT_EQ(2u, env_.injected_faults());
}

TEST_F(FaultInjectionEnvTest, FlipBitRuleCorruptsReadsWithoutErrors) {
  ASSERT_TRUE(Append("/000012.sst", "pristine data", /*sync=*/true).ok());

  FaultRule rule;
  rule.file_kinds = kFaultTable;
  rule.ops = kFaultOpRead;
  rule.one_in = 1;
  rule.flip_bit = true;
  env_.AddRule(rule);

  std::string data;
  ASSERT_TRUE(ReadFileToString(&env_, "/000012.sst", &data).ok());
  EXPECT_NE("pristine data", data);    // Silently corrupted...
  EXPECT_EQ(13u, data.size());         // ...but same length,
  int diff = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    diff += data[i] != "pristine data"[i];
  }
  EXPECT_EQ(1, diff);  // ...differing in exactly one byte.
}

TEST_F(FaultInjectionEnvTest, InactiveFilesystemFailsMutationsNotReads) {
  ASSERT_TRUE(Append("/000013.log", "before crash", /*sync=*/true).ok());

  env_.SetFilesystemActive(false);
  EXPECT_FALSE(Append("/000014.log", "during crash", /*sync=*/false).ok());
  EXPECT_FALSE(env_.RenameFile("/000013.log", "/000015.log").ok());
  EXPECT_FALSE(env_.RemoveFile("/000013.log").ok());
  EXPECT_EQ("before crash", Contents("/000013.log"));  // Reads still work.

  env_.SetFilesystemActive(true);
  EXPECT_TRUE(Append("/000014.log", "after reopen", /*sync=*/false).ok());
}

TEST_F(FaultInjectionEnvTest, FailWritesKillSwitch) {
  env_.SetFailWrites(true);
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_.NewWritableFile("/000016.sst", &file).ok());
  EXPECT_FALSE(file->Append("x").ok());
  EXPECT_FALSE(file->Sync().ok());
  env_.SetFailWrites(false);
  EXPECT_TRUE(file->Append("x").ok());
  EXPECT_TRUE(file->Sync().ok());
}

TEST_F(FaultInjectionEnvTest, RenameMovesSyncTracking) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_.NewWritableFile("/000017.tmp", &file).ok());
  ASSERT_TRUE(file->Append("durable").ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Append("lost in the crash").ok());
  ASSERT_TRUE(file->Close().ok());
  file.reset();
  ASSERT_TRUE(env_.RenameFile("/000017.tmp", "/CURRENT").ok());

  ASSERT_TRUE(env_.DropUnsyncedData().ok());
  // The durable-prefix bookkeeping followed the rename: the renamed file is
  // rewound to its synced prefix rather than left (or dropped) whole.
  EXPECT_EQ("durable", Contents("/CURRENT"));
}

// ------------------------------------------------------------------ WAL ----

class WalTest : public ::testing::Test {
 protected:
  struct CountingReporter : public wal::Reader::Reporter {
    size_t dropped_bytes = 0;
    int corruption_reports = 0;
    void Corruption(size_t bytes, const Status&) override {
      dropped_bytes += bytes;
      ++corruption_reports;
    }
  };

  // Writes `records` through wal::Writer and reads them back.
  std::vector<std::string> RoundTrip(const std::vector<std::string>& records) {
    WriteAll(records);
    return ReadAll();
  }

  void WriteAll(const std::vector<std::string>& records) {
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(env_.NewWritableFile("/wal", &file).ok());
    wal::Writer writer(file.get());
    for (const auto& r : records) {
      EXPECT_TRUE(writer.AddRecord(r).ok());
    }
    EXPECT_TRUE(file->Close().ok());
  }

  std::vector<std::string> ReadAll() {
    std::unique_ptr<SequentialFile> file;
    EXPECT_TRUE(env_.NewSequentialFile("/wal", &file).ok());
    wal::Reader reader(file.get(), &reporter_);
    std::vector<std::string> out;
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch)) {
      out.push_back(record.ToString());
    }
    return out;
  }

  void CorruptByte(size_t offset) {
    std::string contents;
    EXPECT_TRUE(ReadFileToString(&env_, "/wal", &contents).ok());
    contents[offset] ^= 0x55;
    EXPECT_TRUE(WriteStringToFile(&env_, contents, "/wal").ok());
  }

  void TruncateTo(size_t size) {
    std::string contents;
    EXPECT_TRUE(ReadFileToString(&env_, "/wal", &contents).ok());
    contents.resize(size);
    EXPECT_TRUE(WriteStringToFile(&env_, contents, "/wal").ok());
  }

  MemEnv env_;
  CountingReporter reporter_;
};

TEST_F(WalTest, EmptyLog) {
  WriteAll({});
  EXPECT_TRUE(ReadAll().empty());
}

TEST_F(WalTest, SmallRecords) {
  auto out = RoundTrip({"alpha", "beta", "", "gamma"});
  ASSERT_EQ(4u, out.size());
  EXPECT_EQ("alpha", out[0]);
  EXPECT_EQ("beta", out[1]);
  EXPECT_EQ("", out[2]);
  EXPECT_EQ("gamma", out[3]);
  EXPECT_EQ(0, reporter_.corruption_reports);
}

TEST_F(WalTest, RecordSpanningBlocks) {
  // Records larger than one 32KB block must fragment and reassemble.
  std::string big(100000, 'z');
  std::string medium(40000, 'y');
  auto out = RoundTrip({big, medium, "tail"});
  ASSERT_EQ(3u, out.size());
  EXPECT_EQ(big, out[0]);
  EXPECT_EQ(medium, out[1]);
  EXPECT_EQ("tail", out[2]);
}

TEST_F(WalTest, ManyRandomSizedRecords) {
  Random rnd(301);
  std::vector<std::string> records;
  for (int i = 0; i < 500; ++i) {
    records.push_back(std::string(rnd.Skewed(16), static_cast<char>('a' + i % 26)));
  }
  auto out = RoundTrip(records);
  ASSERT_EQ(records.size(), out.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i], out[i]) << "record " << i;
  }
}

TEST_F(WalTest, ChecksumCorruptionDetected) {
  WriteAll({"first-record-payload", "second-record-payload"});
  CorruptByte(wal::kHeaderSize + 2);  // Inside the first record's payload.
  auto out = ReadAll();
  EXPECT_GE(reporter_.corruption_reports, 1);
  // The first record is dropped; replay resumes at a safe point.
  for (const auto& r : out) {
    EXPECT_NE("first-record-payload", r);
  }
}

TEST_F(WalTest, TruncatedTailIsSilentlyIgnored) {
  WriteAll({"one", "two", "three"});
  uint64_t size;
  ASSERT_TRUE(env_.GetFileSize("/wal", &size).ok());
  TruncateTo(size - 2);  // Simulates a crash mid-write of the last record.
  auto out = ReadAll();
  ASSERT_EQ(2u, out.size());
  EXPECT_EQ("one", out[0]);
  EXPECT_EQ("two", out[1]);
  EXPECT_EQ(0, reporter_.corruption_reports);  // A torn tail is not corruption.
}

TEST_F(WalTest, ReopenAndAppendSeparateWriters) {
  // The manifest is appended to by a fresh Writer after reopen; records from
  // both writers must replay (fresh writer starts at block 0 of its view,
  // so this test uses separate files to model rotation instead).
  WriteAll({"epoch1-a", "epoch1-b"});
  auto out = ReadAll();
  ASSERT_EQ(2u, out.size());
}

// ------------------------------------------------------------ MultiRead ----

TEST_P(EnvTest, MultiReadMatchesSerialReads) {
  const std::string fname = dir_ + "/batch";
  const std::string content = "0123456789abcdefghij";  // 20 bytes.
  ASSERT_TRUE(WriteStringToFile(env_, content, fname).ok());

  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env_->NewRandomAccessFile(fname, &file).ok());

  struct Case {
    uint64_t offset;
    size_t len;
    std::string expected;
  };
  const Case cases[] = {
      {0, 5, "01234"},
      {10, 4, "abcd"},
      {7, 3, "789"},
      {18, 6, "ij"},  // Short read at EOF.
      {25, 4, ""},    // Entirely past EOF: empty, not an error.
  };

  char bufs[5][8];
  ReadRequest reqs[5];
  for (size_t i = 0; i < 5; ++i) {
    reqs[i].file = file.get();
    reqs[i].offset = cases[i].offset;
    reqs[i].len = cases[i].len;
    reqs[i].scratch = bufs[i];
  }
  file->MultiRead(reqs, 5);
  for (size_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(reqs[i].status.ok()) << "request " << i << ": "
                                     << reqs[i].status.ToString();
    EXPECT_EQ(cases[i].expected, reqs[i].result.ToString()) << "request " << i;
  }
}

TEST_P(EnvTest, EnvMultiReadSpansFilesInterleaved) {
  const std::string f1 = dir_ + "/batch1";
  const std::string f2 = dir_ + "/batch2";
  ASSERT_TRUE(WriteStringToFile(env_, "AAAABBBBCCCC", f1).ok());
  ASSERT_TRUE(WriteStringToFile(env_, "wwwwxxxxyyyy", f2).ok());

  std::unique_ptr<RandomAccessFile> file1, file2;
  ASSERT_TRUE(env_->NewRandomAccessFile(f1, &file1).ok());
  ASSERT_TRUE(env_->NewRandomAccessFile(f2, &file2).ok());

  // Interleave the two files so the grouping path is exercised.
  char bufs[4][8];
  ReadRequest reqs[4];
  RandomAccessFile* files[] = {file1.get(), file2.get(), file1.get(),
                               file2.get()};
  const uint64_t offsets[] = {0, 4, 8, 8};
  for (size_t i = 0; i < 4; ++i) {
    reqs[i].file = files[i];
    reqs[i].offset = offsets[i];
    reqs[i].len = 4;
    reqs[i].scratch = bufs[i];
  }
  env_->MultiRead(reqs, 4);
  const std::string expected[] = {"AAAA", "xxxx", "CCCC", "yyyy"};
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(reqs[i].status.ok()) << "request " << i;
    EXPECT_EQ(expected[i], reqs[i].result.ToString()) << "request " << i;
  }
}

TEST_P(EnvTest, EnvMultiReadRejectsNullFilePerRequest) {
  const std::string fname = dir_ + "/batch3";
  ASSERT_TRUE(WriteStringToFile(env_, "payload", fname).ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env_->NewRandomAccessFile(fname, &file).ok());

  char bufs[2][8];
  ReadRequest reqs[2];
  reqs[0].file = nullptr;  // Malformed request.
  reqs[0].len = 4;
  reqs[0].scratch = bufs[0];
  reqs[1].file = file.get();
  reqs[1].offset = 0;
  reqs[1].len = 7;
  reqs[1].scratch = bufs[1];
  env_->MultiRead(reqs, 2);
  // Requests are independent: the bad one fails alone.
  EXPECT_TRUE(reqs[0].status.IsInvalidArgument());
  ASSERT_TRUE(reqs[1].status.ok());
  EXPECT_EQ("payload", reqs[1].result.ToString());
}

TEST(PosixBackendTest, AllBackendsAgreeOnBatchResults) {
  Env* posix = Env::Default();
  const std::string dir = ::testing::TempDir() + "lsmlab_backend_test_" +
                          std::to_string(::getpid());
  ASSERT_TRUE(posix->CreateDir(dir).ok());
  const std::string fname = dir + "/data";
  std::string content(8192, '\0');
  for (size_t i = 0; i < content.size(); ++i) {
    content[i] = static_cast<char>('a' + (i % 26));
  }
  ASSERT_TRUE(WriteStringToFile(posix, content, fname).ok());

  // kIoUring may legitimately be unavailable (compiled out or refused by
  // the kernel); then the accessor returns nullptr and we skip it.
  EXPECT_EQ(IoUringAvailable(),
            PosixEnvWithBackend(BatchIoBackend::kIoUring) != nullptr);

  // 70 requests exceeds the uring submission-queue size (64), so chunked
  // submission is exercised too. Offsets hash around the file; the last few
  // land near/past EOF to cover short reads on every backend.
  constexpr size_t kReqs = 70;
  for (BatchIoBackend backend :
       {BatchIoBackend::kSerial, BatchIoBackend::kThreadPool,
        BatchIoBackend::kIoUring}) {
    Env* env = PosixEnvWithBackend(backend);
    if (env == nullptr) {
      ASSERT_EQ(BatchIoBackend::kIoUring, backend);
      continue;
    }
    std::unique_ptr<RandomAccessFile> file;
    ASSERT_TRUE(env->NewRandomAccessFile(fname, &file).ok());

    std::vector<std::string> bufs(kReqs, std::string(32, '\0'));
    std::vector<ReadRequest> reqs(kReqs);
    for (size_t i = 0; i < kReqs; ++i) {
      reqs[i].file = file.get();
      reqs[i].offset = (i * 997) % 8300;  // A few past 8192 - 32.
      reqs[i].len = 32;
      reqs[i].scratch = bufs[i].data();
    }
    file->MultiRead(reqs.data(), kReqs);
    for (size_t i = 0; i < kReqs; ++i) {
      ASSERT_TRUE(reqs[i].status.ok())
          << "backend " << static_cast<int>(backend) << " request " << i
          << ": " << reqs[i].status.ToString();
      const uint64_t off = reqs[i].offset;
      const std::string expected =
          off >= content.size() ? "" : content.substr(off, 32);
      EXPECT_EQ(expected, reqs[i].result.ToString())
          << "backend " << static_cast<int>(backend) << " request " << i;
    }
  }

  (void)posix->RemoveFile(fname);
  (void)posix->RemoveDir(dir);
}

TEST(CountingEnvTest, MultiReadCountsRequestsAndBatches) {
  MemEnv base;
  CountingEnv env(&base);
  ASSERT_TRUE(WriteStringToFile(&base, "aaaabbbbcccc", "/f1").ok());
  ASSERT_TRUE(WriteStringToFile(&base, "ddddeeeeffff", "/f2").ok());

  std::unique_ptr<RandomAccessFile> file1, file2;
  ASSERT_TRUE(env.NewRandomAccessFile("/f1", &file1).ok());
  ASSERT_TRUE(env.NewRandomAccessFile("/f2", &file2).ok());
  env.ResetStats();

  // File-level batch: every request tallies as one read op, the submission
  // as one batch — so serial and batched runs agree on read_ops/bytes_read.
  char bufs[4][8];
  ReadRequest reqs[3];
  for (size_t i = 0; i < 3; ++i) {
    reqs[i].file = file1.get();
    reqs[i].offset = i * 4;
    reqs[i].len = 4;
    reqs[i].scratch = bufs[i];
  }
  file1->MultiRead(reqs, 3);
  IoStats stats = env.GetStats();
  EXPECT_EQ(3u, stats.read_ops);
  EXPECT_EQ(12u, stats.bytes_read);
  EXPECT_EQ(1u, stats.multiread_batches);

  // Env-level cross-file batch: still one submission.
  env.ResetStats();
  ReadRequest cross[4];
  RandomAccessFile* files[] = {file1.get(), file2.get(), file1.get(),
                               file2.get()};
  for (size_t i = 0; i < 4; ++i) {
    cross[i].file = files[i];
    cross[i].offset = 4;
    cross[i].len = 4;
    cross[i].scratch = bufs[i];
  }
  env.MultiRead(cross, 4);
  stats = env.GetStats();
  EXPECT_EQ(4u, stats.read_ops);
  EXPECT_EQ(16u, stats.bytes_read);
  EXPECT_EQ(1u, stats.multiread_batches);
  for (const auto& req : cross) {
    ASSERT_TRUE(req.status.ok());
    EXPECT_EQ(4u, req.result.size());
  }
}

TEST(LatencyEnvTest, MultiReadChargesOneOpPerBatch) {
  MemEnv base;
  MockClock clock;
  DeviceModel model;
  model.per_op_latency_micros = 100;
  model.bandwidth_bytes_per_sec = 1000000;  // 1 MB/s -> 1 us per byte.
  LatencyEnv env(&base, model, &clock);
  ASSERT_TRUE(WriteStringToFile(&base, std::string(1024, 'x'), "/f").ok());

  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env.NewRandomAccessFile("/f", &file).ok());

  char bufs[4][128];
  ReadRequest reqs[4];
  for (size_t i = 0; i < 4; ++i) {
    reqs[i].file = file.get();
    reqs[i].offset = i * 100;
    reqs[i].len = 100;
    reqs[i].scratch = bufs[i];
  }

  // A queued device (NCQ): the batch pays ONE fixed op cost plus transfer
  // for the total bytes...
  uint64_t before = clock.NowMicros();
  file->MultiRead(reqs, 4);
  EXPECT_EQ(before + 100 + 400, clock.NowMicros());

  // ...where the serial loop pays the fixed cost on every read. This gap is
  // the entire batched-MultiGet speedup of experiment A6.
  before = clock.NowMicros();
  for (size_t i = 0; i < 4; ++i) {
    Slice result;
    ASSERT_TRUE(file->Read(i * 100, 100, &result, bufs[i]).ok());
  }
  EXPECT_EQ(before + 4 * (100 + 100), clock.NowMicros());

  // Env-level cross-file batches are still one submission.
  std::unique_ptr<RandomAccessFile> file2;
  ASSERT_TRUE(WriteStringToFile(&base, std::string(1024, 'y'), "/g").ok());
  ASSERT_TRUE(env.NewRandomAccessFile("/g", &file2).ok());
  reqs[1].file = file2.get();
  reqs[3].file = file2.get();
  before = clock.NowMicros();
  env.MultiRead(reqs, 4);
  EXPECT_EQ(before + 100 + 400, clock.NowMicros());
}

// Batched reads must be indistinguishable from a serial Read loop to fault
// rules: scripted indices, transient windows, and bit flips all fire on the
// same requests either way. (The equivalence argument: error-rule checks run
// in request order before dispatch, flip-bit checks in request order after —
// and the two rule families keep disjoint matched-counters.)

TEST_F(FaultInjectionEnvTest, ScriptedReadFaultParityThroughMultiRead) {
  const std::string content = "abcdefghijklmnopqrst";
  FaultRule rule;
  rule.ops = kFaultOpRead;
  rule.at_op_index = 2;

  // Serial baseline: which of 5 reads fails?
  std::vector<bool> serial_ok;
  {
    MemEnv base;
    ASSERT_TRUE(WriteStringToFile(&base, content, "/000030.sst").ok());
    FaultInjectionEnv env(&base, /*seed=*/777);
    env.AddRule(rule);
    std::unique_ptr<RandomAccessFile> file;
    ASSERT_TRUE(env.NewRandomAccessFile("/000030.sst", &file).ok());
    char scratch[8];
    for (int i = 0; i < 5; ++i) {
      Slice result;
      serial_ok.push_back(file->Read(i * 4, 4, &result, scratch).ok());
    }
    EXPECT_EQ(1u, env.injected_faults());
  }
  ASSERT_EQ((std::vector<bool>{true, true, false, true, true}), serial_ok);

  // The same five reads as one batch fail at the same index.
  {
    MemEnv base;
    ASSERT_TRUE(WriteStringToFile(&base, content, "/000030.sst").ok());
    FaultInjectionEnv env(&base, /*seed=*/777);
    env.AddRule(rule);
    std::unique_ptr<RandomAccessFile> file;
    ASSERT_TRUE(env.NewRandomAccessFile("/000030.sst", &file).ok());
    char bufs[5][8];
    ReadRequest reqs[5];
    for (size_t i = 0; i < 5; ++i) {
      reqs[i].file = file.get();
      reqs[i].offset = i * 4;
      reqs[i].len = 4;
      reqs[i].scratch = bufs[i];
    }
    file->MultiRead(reqs, 5);
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(serial_ok[i], reqs[i].status.ok()) << "request " << i;
      if (reqs[i].status.ok()) {
        EXPECT_EQ(content.substr(i * 4, 4), reqs[i].result.ToString());
      }
    }
    EXPECT_TRUE(reqs[2].status.IsIOError());
    EXPECT_EQ(1u, env.injected_faults());
  }
}

TEST_F(FaultInjectionEnvTest, ScriptedFaultHonorsRequestOrderAcrossFiles) {
  // An env-level batch interleaving two files must count rule matches in
  // request order — NOT per-file-group order — to mirror a serial loop.
  FaultRule rule;
  rule.ops = kFaultOpRead;
  rule.at_op_index = 3;

  MemEnv base;
  ASSERT_TRUE(WriteStringToFile(&base, "AAAAAAAA", "/000031.sst").ok());
  ASSERT_TRUE(WriteStringToFile(&base, "BBBBBBBB", "/000032.sst").ok());
  FaultInjectionEnv env(&base, /*seed=*/777);
  env.AddRule(rule);
  std::unique_ptr<RandomAccessFile> fa, fb;
  ASSERT_TRUE(env.NewRandomAccessFile("/000031.sst", &fa).ok());
  ASSERT_TRUE(env.NewRandomAccessFile("/000032.sst", &fb).ok());

  char bufs[5][8];
  ReadRequest reqs[5];
  RandomAccessFile* files[] = {fa.get(), fb.get(), fa.get(), fb.get(),
                               fa.get()};
  for (size_t i = 0; i < 5; ++i) {
    reqs[i].file = files[i];
    reqs[i].offset = 0;
    reqs[i].len = 4;
    reqs[i].scratch = bufs[i];
  }
  env.MultiRead(reqs, 5);
  // A per-file grouping ({A,A,A},{B,B}) would fail B's first read instead.
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(i != 3, reqs[i].status.ok()) << "request " << i;
  }
  EXPECT_TRUE(reqs[3].status.IsIOError());
}

TEST_F(FaultInjectionEnvTest, FlipBitParityThroughMultiRead) {
  const std::string content = "pristine-pristine-pristine";
  FaultRule rule;
  rule.ops = kFaultOpRead;
  rule.at_op_index = 1;
  rule.flip_bit = true;

  auto run = [&](bool batched) {
    MemEnv base;
    EXPECT_TRUE(WriteStringToFile(&base, content, "/000033.sst").ok());
    FaultInjectionEnv env(&base, /*seed=*/42);
    env.AddRule(rule);
    std::unique_ptr<RandomAccessFile> file;
    EXPECT_TRUE(env.NewRandomAccessFile("/000033.sst", &file).ok());
    std::vector<std::string> out;
    char bufs[3][16];
    if (batched) {
      ReadRequest reqs[3];
      for (size_t i = 0; i < 3; ++i) {
        reqs[i].file = file.get();
        reqs[i].offset = i * 8;
        reqs[i].len = 8;
        reqs[i].scratch = bufs[i];
      }
      file->MultiRead(reqs, 3);
      for (auto& req : reqs) {
        EXPECT_TRUE(req.status.ok());
        out.push_back(req.result.ToString());
      }
    } else {
      for (size_t i = 0; i < 3; ++i) {
        Slice result;
        EXPECT_TRUE(file->Read(i * 8, 8, &result, bufs[i]).ok());
        out.push_back(result.ToString());
      }
    }
    return out;
  };

  const auto serial = run(/*batched=*/false);
  const auto batched = run(/*batched=*/true);
  // Same seed, same single rng draw: the same bit of the same read flips.
  EXPECT_EQ(serial, batched);
  EXPECT_EQ(content.substr(0, 8), serial[0]);
  EXPECT_NE(content.substr(8, 8), serial[1]);  // Silently corrupted.
  EXPECT_EQ(content.substr(16, 8), serial[2]);
}

TEST_F(FaultInjectionEnvTest, TransientReadWindowParityThroughMultiRead) {
  // one_in=1 fires on every matching read until max_failures is exhausted:
  // a transient outage covering exactly the first two reads.
  FaultRule rule;
  rule.ops = kFaultOpRead;
  rule.one_in = 1;
  rule.max_failures = 2;

  auto failure_pattern = [&](bool batched) {
    MemEnv base;
    EXPECT_TRUE(WriteStringToFile(&base, "0123456789abcdef", "/000034.sst").ok());
    FaultInjectionEnv env(&base, /*seed=*/9);
    env.AddRule(rule);
    std::unique_ptr<RandomAccessFile> file;
    EXPECT_TRUE(env.NewRandomAccessFile("/000034.sst", &file).ok());
    std::vector<bool> ok;
    char bufs[4][8];
    if (batched) {
      ReadRequest reqs[4];
      for (size_t i = 0; i < 4; ++i) {
        reqs[i].file = file.get();
        reqs[i].offset = i * 4;
        reqs[i].len = 4;
        reqs[i].scratch = bufs[i];
      }
      file->MultiRead(reqs, 4);
      for (const auto& req : reqs) {
        ok.push_back(req.status.ok());
      }
    } else {
      for (size_t i = 0; i < 4; ++i) {
        Slice result;
        ok.push_back(file->Read(i * 4, 4, &result, bufs[i]).ok());
      }
    }
    return ok;
  };

  const std::vector<bool> expected{false, false, true, true};
  EXPECT_EQ(expected, failure_pattern(/*batched=*/false));
  EXPECT_EQ(expected, failure_pattern(/*batched=*/true));
}

// ------------------------------------------------------ ReadaheadFile ----

class ReadaheadTest : public ::testing::Test {
 protected:
  // A base file that counts how many device reads actually happen.
  class CountingFile : public RandomAccessFile {
   public:
    explicit CountingFile(RandomAccessFile* base) : base_(base) {}
    Status Read(uint64_t offset, size_t n, Slice* result,
                char* scratch) const override {
      ++reads_;
      return base_->Read(offset, n, result, scratch);
    }
    mutable int reads_ = 0;

   private:
    RandomAccessFile* const base_;
  };

  void SetUp() override {
    content_.resize(2000);
    for (size_t i = 0; i < content_.size(); ++i) {
      content_[i] = static_cast<char>('a' + (i % 26));
    }
    ASSERT_TRUE(WriteStringToFile(&env_, content_, "/f").ok());
    ASSERT_TRUE(env_.NewRandomAccessFile("/f", &base_file_).ok());
    counting_ = std::make_unique<CountingFile>(base_file_.get());
  }

  std::string ReadAt(const ReadaheadRandomAccessFile& file, uint64_t offset,
                     size_t n) {
    std::string buf(n, '\0');
    Slice result;
    EXPECT_TRUE(file.Read(offset, n, &result, buf.data()).ok());
    return result.ToString();
  }

  MemEnv env_;
  std::string content_;
  std::unique_ptr<RandomAccessFile> base_file_;
  std::unique_ptr<CountingFile> counting_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

TEST_F(ReadaheadTest, SequentialScanRampsWindowAndSavesDeviceReads) {
  ReadaheadRandomAccessFile file(counting_.get(), /*initial_readahead=*/128,
                                 /*max_readahead=*/512, &hits_, &misses_);
  // First read misses and fetches the initial 128-byte window.
  EXPECT_EQ(content_.substr(0, 64), ReadAt(file, 0, 64));
  EXPECT_EQ(1u, misses_.load());
  EXPECT_EQ(1, counting_->reads_);
  EXPECT_EQ(128u, file.window());
  // Second read is served from the buffer: no device read.
  EXPECT_EQ(content_.substr(64, 64), ReadAt(file, 64, 64));
  EXPECT_EQ(1u, hits_.load());
  EXPECT_EQ(1, counting_->reads_);
  // Continuing exactly at the buffer end doubles the window: 256 bytes.
  EXPECT_EQ(content_.substr(128, 64), ReadAt(file, 128, 64));
  EXPECT_EQ(2u, misses_.load());
  EXPECT_EQ(2, counting_->reads_);
  EXPECT_EQ(256u, file.window());
  // ...which now covers the next three reads for free.
  for (int i = 0; i < 3; ++i) {
    const uint64_t off = 192 + i * 64;
    EXPECT_EQ(content_.substr(off, 64), ReadAt(file, off, 64));
  }
  EXPECT_EQ(4u, hits_.load());
  EXPECT_EQ(2, counting_->reads_);
  // The ramp caps at max_readahead.
  EXPECT_EQ(content_.substr(384, 64), ReadAt(file, 384, 64));
  EXPECT_EQ(512u, file.window());
}

TEST_F(ReadaheadTest, RandomJumpResetsWindow) {
  ReadaheadRandomAccessFile file(counting_.get(), 128, 512, &hits_, &misses_);
  ReadAt(file, 0, 64);
  ReadAt(file, 128, 64);  // Sequential: window -> 256.
  ASSERT_EQ(256u, file.window());
  // A random jump stops the speculation: window back to initial.
  EXPECT_EQ(content_.substr(1500, 64), ReadAt(file, 1500, 64));
  EXPECT_EQ(128u, file.window());
}

TEST_F(ReadaheadTest, ShortReadAtEofAndLargeReadPassthrough) {
  ReadaheadRandomAccessFile file(counting_.get(), 128, 512, &hits_, &misses_);
  // The prefetch window overruns EOF; the read itself is served short,
  // exactly like a plain Read.
  EXPECT_EQ(content_.substr(1990), ReadAt(file, 1990, 64));
  EXPECT_EQ(10u, ReadAt(file, 1990, 64).size());
  // Entirely past EOF: empty.
  EXPECT_EQ("", ReadAt(file, 3000, 32));
  // Reads >= max_readahead bypass the buffer (and its accounting).
  const uint64_t hits_before = hits_.load();
  const uint64_t misses_before = misses_.load();
  EXPECT_EQ(content_.substr(0, 512), ReadAt(file, 0, 512));
  EXPECT_EQ(hits_before, hits_.load());
  EXPECT_EQ(misses_before, misses_.load());
}

}  // namespace
}  // namespace lsmlab
