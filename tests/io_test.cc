#include <gtest/gtest.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "db/filename.h"
#include "io/counting_env.h"
#include "io/env.h"
#include "io/fault_injection_env.h"
#include "io/latency_env.h"
#include "io/mem_env.h"
#include "io/wal_reader.h"
#include "io/wal_writer.h"
#include "util/clock.h"
#include "util/random.h"

namespace lsmlab {
namespace {

// ----------------------------------------------------------------- Env -----

class EnvTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    if (GetParam()) {
      env_ = &mem_env_;
      dir_ = "/envtest";
    } else {
      env_ = Env::Default();
      // Unique per process: ctest runs each discovered case as its own
      // process, possibly in parallel, and a shared directory lets one
      // case's TearDown delete files another case is still reading.
      dir_ = ::testing::TempDir() + "lsmlab_env_test_" +
             std::to_string(::getpid());
    }
    ASSERT_TRUE(env_->CreateDir(dir_).ok());
  }

  void TearDown() override {
    std::vector<std::string> children;
    if (env_->GetChildren(dir_, &children).ok()) {
      for (const auto& child : children) {
        (void)env_->RemoveFile(dir_ + "/" + child);
      }
    }
    (void)env_->RemoveDir(dir_);
  }

  MemEnv mem_env_;
  Env* env_ = nullptr;
  std::string dir_;
};

TEST_P(EnvTest, WriteReadRoundTrip) {
  const std::string fname = dir_ + "/f1";
  ASSERT_TRUE(WriteStringToFile(env_, "hello world", fname).ok());

  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_, fname, &contents).ok());
  EXPECT_EQ("hello world", contents);

  uint64_t size = 0;
  ASSERT_TRUE(env_->GetFileSize(fname, &size).ok());
  EXPECT_EQ(11u, size);
}

TEST_P(EnvTest, RandomAccessReads) {
  const std::string fname = dir_ + "/f2";
  ASSERT_TRUE(WriteStringToFile(env_, "0123456789", fname).ok());

  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env_->NewRandomAccessFile(fname, &file).ok());
  char scratch[16];
  Slice result;
  ASSERT_TRUE(file->Read(3, 4, &result, scratch).ok());
  EXPECT_EQ("3456", result.ToString());
  // Read past EOF yields short read.
  ASSERT_TRUE(file->Read(8, 10, &result, scratch).ok());
  EXPECT_EQ("89", result.ToString());
  ASSERT_TRUE(file->Read(100, 10, &result, scratch).ok());
  EXPECT_TRUE(result.empty());
}

TEST_P(EnvTest, MissingFileIsNotFound) {
  std::unique_ptr<SequentialFile> f;
  Status s = env_->NewSequentialFile(dir_ + "/missing", &f);
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();
  EXPECT_FALSE(env_->FileExists(dir_ + "/missing"));
}

TEST_P(EnvTest, GetChildrenListsFiles) {
  ASSERT_TRUE(WriteStringToFile(env_, "a", dir_ + "/a").ok());
  ASSERT_TRUE(WriteStringToFile(env_, "b", dir_ + "/b").ok());
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren(dir_, &children).ok());
  EXPECT_EQ(2u, children.size());
}

TEST_P(EnvTest, RenameReplacesTarget) {
  ASSERT_TRUE(WriteStringToFile(env_, "source", dir_ + "/src").ok());
  ASSERT_TRUE(WriteStringToFile(env_, "old", dir_ + "/dst").ok());
  ASSERT_TRUE(env_->RenameFile(dir_ + "/src", dir_ + "/dst").ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_, dir_ + "/dst", &contents).ok());
  EXPECT_EQ("source", contents);
  EXPECT_FALSE(env_->FileExists(dir_ + "/src"));
}

TEST_P(EnvTest, RemoveFileDeletes) {
  ASSERT_TRUE(WriteStringToFile(env_, "x", dir_ + "/x").ok());
  ASSERT_TRUE(env_->RemoveFile(dir_ + "/x").ok());
  EXPECT_FALSE(env_->FileExists(dir_ + "/x"));
  EXPECT_TRUE(env_->RemoveFile(dir_ + "/x").IsNotFound());
}

INSTANTIATE_TEST_SUITE_P(MemAndPosix, EnvTest, ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "MemEnv" : "PosixEnv";
                         });

TEST_P(EnvTest, RandomRWFileReadWrite) {
  const std::string fname = dir_ + "/rw";
  std::unique_ptr<RandomRWFile> file;
  ASSERT_TRUE(env_->NewRandomRWFile(fname, &file).ok());

  // Write at scattered offsets, including extending the file.
  ASSERT_TRUE(file->Write(0, "0123456789").ok());
  ASSERT_TRUE(file->Write(4, "XY").ok());
  ASSERT_TRUE(file->Write(20, "tail").ok());
  ASSERT_TRUE(file->Sync().ok());

  char scratch[32];
  Slice result;
  ASSERT_TRUE(file->Read(0, 10, &result, scratch).ok());
  EXPECT_EQ("0123XY6789", result.ToString());
  ASSERT_TRUE(file->Read(20, 4, &result, scratch).ok());
  EXPECT_EQ("tail", result.ToString());
  // The gap [10,20) reads as zero bytes.
  ASSERT_TRUE(file->Read(10, 10, &result, scratch).ok());
  EXPECT_EQ(std::string(10, '\0'), result.ToString());
}

TEST_P(EnvTest, RandomRWFilePreservesExistingContents) {
  const std::string fname = dir_ + "/rw2";
  ASSERT_TRUE(WriteStringToFile(env_, "persistent", fname).ok());
  // Unlike NewWritableFile, reopening read-write must not truncate.
  std::unique_ptr<RandomRWFile> file;
  ASSERT_TRUE(env_->NewRandomRWFile(fname, &file).ok());
  char scratch[32];
  Slice result;
  ASSERT_TRUE(file->Read(0, 10, &result, scratch).ok());
  EXPECT_EQ("persistent", result.ToString());
  ASSERT_TRUE(file->Write(0, "P").ok());
  ASSERT_TRUE(file->Read(0, 10, &result, scratch).ok());
  EXPECT_EQ("Persistent", result.ToString());
}

TEST(MemEnvTest, OpenReaderSurvivesRemove) {
  // POSIX unlink semantics: a compaction can delete an input file while an
  // iterator still reads it.
  MemEnv env;
  ASSERT_TRUE(WriteStringToFile(&env, "still here", "/f").ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env.NewRandomAccessFile("/f", &file).ok());
  ASSERT_TRUE(env.RemoveFile("/f").ok());
  char scratch[16];
  Slice result;
  ASSERT_TRUE(file->Read(0, 10, &result, scratch).ok());
  EXPECT_EQ("still here", result.ToString());
}

TEST(MemEnvTest, TotalFileBytes) {
  MemEnv env;
  EXPECT_EQ(0u, env.TotalFileBytes());
  ASSERT_TRUE(WriteStringToFile(&env, "12345", "/a").ok());
  ASSERT_TRUE(WriteStringToFile(&env, "123", "/b").ok());
  EXPECT_EQ(8u, env.TotalFileBytes());
}

// ---------------------------------------------------------- CountingEnv ----

TEST(CountingEnvTest, CountsReadsAndWrites) {
  MemEnv base;
  CountingEnv env(&base);
  ASSERT_TRUE(WriteStringToFile(&env, "hello world!", "/f").ok());

  IoStats stats = env.GetStats();
  EXPECT_EQ(12u, stats.bytes_written);
  EXPECT_EQ(1u, stats.write_ops);
  EXPECT_EQ(1u, stats.files_created);
  EXPECT_EQ(1u, stats.syncs);

  std::string contents;
  ASSERT_TRUE(ReadFileToString(&env, "/f", &contents).ok());
  stats = env.GetStats();
  EXPECT_EQ(12u, stats.bytes_read);
  EXPECT_GE(stats.read_ops, 1u);
}

TEST(CountingEnvTest, ResetClearsCounters) {
  MemEnv base;
  CountingEnv env(&base);
  ASSERT_TRUE(WriteStringToFile(&env, "data", "/f").ok());
  env.ResetStats();
  IoStats stats = env.GetStats();
  EXPECT_EQ(0u, stats.bytes_written);
  EXPECT_EQ(0u, stats.files_created);
}

TEST(CountingEnvTest, WriteAmplificationHelper) {
  IoStats stats;
  stats.bytes_written = 400;
  EXPECT_DOUBLE_EQ(4.0, stats.WriteAmplification(100));
  EXPECT_DOUBLE_EQ(0.0, stats.WriteAmplification(0));
}

// ----------------------------------------------------------- LatencyEnv ----

TEST(LatencyEnvTest, ChargesVirtualTime) {
  MemEnv base;
  MockClock clock;
  DeviceModel model;
  model.per_op_latency_micros = 100;
  model.bandwidth_bytes_per_sec = 1000000;  // 1 MB/s -> 1 us per byte.
  LatencyEnv env(&base, model, &clock);

  ASSERT_TRUE(WriteStringToFile(&env, std::string(1000, 'x'), "/f").ok());
  // One write of 1000 bytes (100us fixed + 1000us transfer) plus the sync,
  // which costs one zero-byte device op (100us) — the cost group commit
  // amortizes across writers.
  EXPECT_EQ(1200u, clock.NowMicros());

  std::string contents;
  ASSERT_TRUE(ReadFileToString(&env, "/f", &contents).ok());
  EXPECT_EQ(1000u, contents.size());
  EXPECT_GE(clock.NowMicros(), 2200u);
}

TEST(LatencyEnvTest, DevicePresetsDiffer) {
  EXPECT_GT(DeviceModel::Hdd().per_op_latency_micros,
            DeviceModel::Ssd().per_op_latency_micros);
  EXPECT_GT(DeviceModel::Nvme().bandwidth_bytes_per_sec,
            DeviceModel::Ssd().bandwidth_bytes_per_sec);
}

// --------------------------------------------------- FaultInjectionEnv ----

class FaultInjectionEnvTest : public ::testing::Test {
 protected:
  // Appends `data` to `fname`, optionally syncing, and returns the combined
  // append/sync status (first failure wins).
  Status Append(const std::string& fname, const std::string& data,
                bool sync) {
    std::unique_ptr<WritableFile> file;
    Status s = env_.NewWritableFile(fname, &file);
    if (!s.ok()) {
      return s;
    }
    s = file->Append(data);
    if (s.ok() && sync) {
      s = file->Sync();
    }
    Status c = file->Close();
    return s.ok() ? c : s;
  }

  std::string Contents(const std::string& fname) {
    std::string data;
    EXPECT_TRUE(ReadFileToString(&env_, fname, &data).ok());
    return data;
  }

  MemEnv base_;
  FaultInjectionEnv env_{&base_, /*seed=*/12345};
};

TEST_F(FaultInjectionEnvTest, DropUnsyncedDataKeepsSyncedPrefix) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_.NewWritableFile("/000001.log", &file).ok());
  ASSERT_TRUE(file->Append("durable").ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Append("volatile").ok());  // Never synced.
  ASSERT_TRUE(file->Close().ok());             // Close implies no durability.
  file.reset();

  // Before the crash the DB can read its own unsynced bytes (write-through).
  EXPECT_EQ("durablevolatile", Contents("/000001.log"));

  ASSERT_TRUE(env_.DropUnsyncedData().ok());
  EXPECT_EQ("durable", Contents("/000001.log"));
}

TEST_F(FaultInjectionEnvTest, DropUnsyncedDataDeletesNeverSyncedFiles) {
  ASSERT_TRUE(Append("/000002.sst", "never synced", /*sync=*/false).ok());
  ASSERT_TRUE(Append("/000003.sst", "synced", /*sync=*/true).ok());

  ASSERT_TRUE(env_.DropUnsyncedData().ok());
  EXPECT_FALSE(env_.FileExists("/000002.sst"));
  EXPECT_EQ("synced", Contents("/000003.sst"));
}

TEST_F(FaultInjectionEnvTest, TornTailNeverPersistsNeverSyncedFile) {
  // A never-synced file's directory entry was never fsynced either: after a
  // crash the whole file is gone. A torn-tail fragment must not keep it
  // alive — even with tearing forced on every unsynced tail.
  ASSERT_TRUE(Append("/000042.sst", "never synced", /*sync=*/false).ok());
  ASSERT_TRUE(env_.DropUnsyncedData(/*torn_tail_one_in=*/1).ok());
  EXPECT_FALSE(env_.FileExists("/000042.sst"));
}

TEST_F(FaultInjectionEnvTest, TornTailIsDeterministicForASeed) {
  auto run_once = [](uint64_t seed) {
    MemEnv base;
    FaultInjectionEnv env(&base, seed);
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(env.NewWritableFile("/000004.log", &file).ok());
    EXPECT_TRUE(file->Append("synced-part|").ok());
    EXPECT_TRUE(file->Sync().ok());
    EXPECT_TRUE(file->Append("this tail will tear somewhere").ok());
    file.reset();
    EXPECT_TRUE(env.DropUnsyncedData(/*torn_tail_one_in=*/1).ok());
    std::string data;
    EXPECT_TRUE(ReadFileToString(&env, "/000004.log", &data).ok());
    return data;
  };

  const std::string a = run_once(99);
  const std::string b = run_once(99);
  EXPECT_EQ(a, b);  // Reproducible from the seed.
  // The torn tail is a strict extension of the synced prefix with a
  // corrupted final byte — never a rewind of synced data.
  EXPECT_EQ(0u, a.find("synced-part|"));
  EXPECT_GT(a.size(), std::string("synced-part|").size());
  EXPECT_NE(a, std::string("synced-part|") + "this tail will tear somewhere");
}

TEST_F(FaultInjectionEnvTest, RulesFilterByFileKind) {
  FaultRule rule;
  rule.file_kinds = kFaultWal;
  rule.ops = kFaultOpAppend | kFaultOpSync;
  rule.one_in = 1;  // Every matching op fails unconditionally.
  env_.AddRule(rule);

  EXPECT_FALSE(Append("/000005.log", "wal write", /*sync=*/true).ok());
  EXPECT_TRUE(Append("/000006.sst", "table write", /*sync=*/true).ok());
  EXPECT_TRUE(Append("/MANIFEST-000007", "edit", /*sync=*/true).ok());
  EXPECT_GE(env_.injected_faults(), 1u);
}

TEST_F(FaultInjectionEnvTest, ScriptedRuleFiresAtExactOpIndex) {
  FaultRule rule;
  rule.file_kinds = kFaultTable;
  rule.ops = kFaultOpAppend;
  rule.at_op_index = 2;  // Third table append fails; all others succeed.
  env_.AddRule(rule);

  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_.NewWritableFile("/000008.sst", &file).ok());
  EXPECT_TRUE(file->Append("a").ok());
  EXPECT_TRUE(file->Append("b").ok());
  EXPECT_FALSE(file->Append("c").ok());
  EXPECT_TRUE(file->Append("d").ok());
  EXPECT_EQ(1u, env_.injected_faults());
}

TEST_F(FaultInjectionEnvTest, TransientRuleStopsAfterMaxFailures) {
  FaultRule rule;
  rule.file_kinds = kFaultAnyFile;
  rule.ops = kFaultOpSync;
  rule.one_in = 1;  // Every sync...
  rule.max_failures = 2;  // ...for the first two.
  env_.AddRule(rule);

  EXPECT_FALSE(Append("/000009.sst", "x", /*sync=*/true).ok());
  EXPECT_FALSE(Append("/000010.sst", "x", /*sync=*/true).ok());
  EXPECT_TRUE(Append("/000011.sst", "x", /*sync=*/true).ok());
  EXPECT_EQ(2u, env_.injected_faults());
}

TEST_F(FaultInjectionEnvTest, FlipBitRuleCorruptsReadsWithoutErrors) {
  ASSERT_TRUE(Append("/000012.sst", "pristine data", /*sync=*/true).ok());

  FaultRule rule;
  rule.file_kinds = kFaultTable;
  rule.ops = kFaultOpRead;
  rule.one_in = 1;
  rule.flip_bit = true;
  env_.AddRule(rule);

  std::string data;
  ASSERT_TRUE(ReadFileToString(&env_, "/000012.sst", &data).ok());
  EXPECT_NE("pristine data", data);    // Silently corrupted...
  EXPECT_EQ(13u, data.size());         // ...but same length,
  int diff = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    diff += data[i] != "pristine data"[i];
  }
  EXPECT_EQ(1, diff);  // ...differing in exactly one byte.
}

TEST_F(FaultInjectionEnvTest, InactiveFilesystemFailsMutationsNotReads) {
  ASSERT_TRUE(Append("/000013.log", "before crash", /*sync=*/true).ok());

  env_.SetFilesystemActive(false);
  EXPECT_FALSE(Append("/000014.log", "during crash", /*sync=*/false).ok());
  EXPECT_FALSE(env_.RenameFile("/000013.log", "/000015.log").ok());
  EXPECT_FALSE(env_.RemoveFile("/000013.log").ok());
  EXPECT_EQ("before crash", Contents("/000013.log"));  // Reads still work.

  env_.SetFilesystemActive(true);
  EXPECT_TRUE(Append("/000014.log", "after reopen", /*sync=*/false).ok());
}

TEST_F(FaultInjectionEnvTest, FailWritesKillSwitch) {
  env_.SetFailWrites(true);
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_.NewWritableFile("/000016.sst", &file).ok());
  EXPECT_FALSE(file->Append("x").ok());
  EXPECT_FALSE(file->Sync().ok());
  env_.SetFailWrites(false);
  EXPECT_TRUE(file->Append("x").ok());
  EXPECT_TRUE(file->Sync().ok());
}

TEST_F(FaultInjectionEnvTest, RenameMovesSyncTracking) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_.NewWritableFile("/000017.tmp", &file).ok());
  ASSERT_TRUE(file->Append("durable").ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Append("lost in the crash").ok());
  ASSERT_TRUE(file->Close().ok());
  file.reset();
  ASSERT_TRUE(env_.RenameFile("/000017.tmp", "/CURRENT").ok());

  ASSERT_TRUE(env_.DropUnsyncedData().ok());
  // The durable-prefix bookkeeping followed the rename: the renamed file is
  // rewound to its synced prefix rather than left (or dropped) whole.
  EXPECT_EQ("durable", Contents("/CURRENT"));
}

// ------------------------------------------------------------------ WAL ----

class WalTest : public ::testing::Test {
 protected:
  struct CountingReporter : public wal::Reader::Reporter {
    size_t dropped_bytes = 0;
    int corruption_reports = 0;
    void Corruption(size_t bytes, const Status&) override {
      dropped_bytes += bytes;
      ++corruption_reports;
    }
  };

  // Writes `records` through wal::Writer and reads them back.
  std::vector<std::string> RoundTrip(const std::vector<std::string>& records) {
    WriteAll(records);
    return ReadAll();
  }

  void WriteAll(const std::vector<std::string>& records) {
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(env_.NewWritableFile("/wal", &file).ok());
    wal::Writer writer(file.get());
    for (const auto& r : records) {
      EXPECT_TRUE(writer.AddRecord(r).ok());
    }
    EXPECT_TRUE(file->Close().ok());
  }

  std::vector<std::string> ReadAll() {
    std::unique_ptr<SequentialFile> file;
    EXPECT_TRUE(env_.NewSequentialFile("/wal", &file).ok());
    wal::Reader reader(file.get(), &reporter_);
    std::vector<std::string> out;
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch)) {
      out.push_back(record.ToString());
    }
    return out;
  }

  void CorruptByte(size_t offset) {
    std::string contents;
    EXPECT_TRUE(ReadFileToString(&env_, "/wal", &contents).ok());
    contents[offset] ^= 0x55;
    EXPECT_TRUE(WriteStringToFile(&env_, contents, "/wal").ok());
  }

  void TruncateTo(size_t size) {
    std::string contents;
    EXPECT_TRUE(ReadFileToString(&env_, "/wal", &contents).ok());
    contents.resize(size);
    EXPECT_TRUE(WriteStringToFile(&env_, contents, "/wal").ok());
  }

  MemEnv env_;
  CountingReporter reporter_;
};

TEST_F(WalTest, EmptyLog) {
  WriteAll({});
  EXPECT_TRUE(ReadAll().empty());
}

TEST_F(WalTest, SmallRecords) {
  auto out = RoundTrip({"alpha", "beta", "", "gamma"});
  ASSERT_EQ(4u, out.size());
  EXPECT_EQ("alpha", out[0]);
  EXPECT_EQ("beta", out[1]);
  EXPECT_EQ("", out[2]);
  EXPECT_EQ("gamma", out[3]);
  EXPECT_EQ(0, reporter_.corruption_reports);
}

TEST_F(WalTest, RecordSpanningBlocks) {
  // Records larger than one 32KB block must fragment and reassemble.
  std::string big(100000, 'z');
  std::string medium(40000, 'y');
  auto out = RoundTrip({big, medium, "tail"});
  ASSERT_EQ(3u, out.size());
  EXPECT_EQ(big, out[0]);
  EXPECT_EQ(medium, out[1]);
  EXPECT_EQ("tail", out[2]);
}

TEST_F(WalTest, ManyRandomSizedRecords) {
  Random rnd(301);
  std::vector<std::string> records;
  for (int i = 0; i < 500; ++i) {
    records.push_back(std::string(rnd.Skewed(16), static_cast<char>('a' + i % 26)));
  }
  auto out = RoundTrip(records);
  ASSERT_EQ(records.size(), out.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i], out[i]) << "record " << i;
  }
}

TEST_F(WalTest, ChecksumCorruptionDetected) {
  WriteAll({"first-record-payload", "second-record-payload"});
  CorruptByte(wal::kHeaderSize + 2);  // Inside the first record's payload.
  auto out = ReadAll();
  EXPECT_GE(reporter_.corruption_reports, 1);
  // The first record is dropped; replay resumes at a safe point.
  for (const auto& r : out) {
    EXPECT_NE("first-record-payload", r);
  }
}

TEST_F(WalTest, TruncatedTailIsSilentlyIgnored) {
  WriteAll({"one", "two", "three"});
  uint64_t size;
  ASSERT_TRUE(env_.GetFileSize("/wal", &size).ok());
  TruncateTo(size - 2);  // Simulates a crash mid-write of the last record.
  auto out = ReadAll();
  ASSERT_EQ(2u, out.size());
  EXPECT_EQ("one", out[0]);
  EXPECT_EQ("two", out[1]);
  EXPECT_EQ(0, reporter_.corruption_reports);  // A torn tail is not corruption.
}

TEST_F(WalTest, ReopenAndAppendSeparateWriters) {
  // The manifest is appended to by a fresh Writer after reopen; records from
  // both writers must replay (fresh writer starts at block 0 of its view,
  // so this test uses separate files to model rotation instead).
  WriteAll({"epoch1-a", "epoch1-b"});
  auto out = ReadAll();
  ASSERT_EQ(2u, out.size());
}

}  // namespace
}  // namespace lsmlab
