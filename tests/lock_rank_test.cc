// Tests of the runtime lock-rank validator and the I/O-under-lock detector
// (src/util/lock_rank.h). The seeded-inversion cases are death tests: each
// deliberately violates the declared DAG in a forked child and asserts the
// validator aborts with a lock-rank report — proving the guardrail actually
// fires, not just that clean code stays clean. The sharded cases then prove
// the production N=4 2PC commit path is rank-clean end to end.
//
// The whole file is compiled only when the validator is (default for any
// non-Release build; see LSMLAB_LOCK_RANK in CMakeLists.txt).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "db/db.h"
#include "db/write_batch.h"
#include "io/env.h"
#include "io/lock_checking_env.h"
#include "io/mem_env.h"
#include "util/lock_rank.h"
#include "util/mutex.h"

#if defined(LSMLAB_LOCK_RANK_CHECKS)

namespace lsmlab {
namespace {

// ---------------------------------------------------------------------------
// Seeded inversions (death tests)
// ---------------------------------------------------------------------------

using LockRankDeathTest = ::testing::Test;

TEST(LockRankDeathTest, RankInversionAborts) {
  ASSERT_DEATH(
      {
        // kEngineMu (300) then kWriterQueue (200): the exact inversion the
        // writer-queue protocol forbids (writer_queue_mu_ is ACQUIRED_BEFORE
        // mu_), expressed with test-local mutexes.
        Mutex engine(LockRank::kEngineMu, "death.engine_mu");
        Mutex queue(LockRank::kWriterQueue, "death.writer_queue_mu");
        engine.Lock();
        queue.Lock();
      },
      "lock-rank violation: rank inversion");
}

TEST(LockRankDeathTest, EqualRankNestingAborts) {
  ASSERT_DEATH(
      {
        // Two same-rank locks at once — the invariant that keeps N-shard
        // visits deadlock-free without ordering them.
        Mutex shard_a(LockRank::kEngineMu, "death.shard_a_mu");
        Mutex shard_b(LockRank::kEngineMu, "death.shard_b_mu");
        shard_a.Lock();
        shard_b.Lock();
      },
      "lock-rank violation: equal-rank nested acquisition");
}

TEST(LockRankDeathTest, SelfDeadlockAborts) {
  ASSERT_DEATH(
      {
        Mutex mu(LockRank::kTest, "death.recursive_mu");
        mu.Lock();
        mu.Lock();
      },
      "lock-rank violation: self-deadlock");
}

TEST(LockRankDeathTest, LearnedCycleAmongUnrankedAborts) {
  ASSERT_DEATH(
      {
        // Unranked mutexes carry no declared order, so the first nesting
        // (a → b) merely teaches the graph. The opposite nesting closes a
        // cycle and must abort — this is the dynamically-learned half of
        // the validator, covering locks the DAG does not name.
        Mutex a;  // Unranked on purpose.
        Mutex b;
        a.Lock();
        b.Lock();
        b.Unlock();
        a.Unlock();
        b.Lock();
        a.Lock();
      },
      "lock-rank violation: cycle in the learned acquired-after graph");
}

TEST(LockRankDeathTest, CondVarWaitWithInnerLockHeldAborts) {
  ASSERT_DEATH(
      {
        Mutex outer(LockRank::kEngineMu, "death.wait_outer");
        Mutex inner(LockRank::kReadView, "death.wait_inner");
        CondVar cv;
        outer.Lock();
        inner.Lock();
        // Sleeping on `outer` would pin `inner` (a lock ordered after it)
        // for the whole wait; the waker may need it — a stall TSan cannot
        // see because no data race ever happens.
        cv.WaitForMicros(outer, 1000);
      },
      "lock-rank violation: condition wait");
}

TEST(LockRankDeathTest, TryLockOutOfOrderDoesNotAbort) {
  // TryLock cannot deadlock (it never blocks), so ordering is not enforced
  // on it — but the acquired lock still gates I/O and later acquisitions.
  Mutex engine(LockRank::kEngineMu, "trylock.engine_mu");
  Mutex queue(LockRank::kWriterQueue, "trylock.queue_mu");
  engine.Lock();
  ASSERT_TRUE(queue.TryLock());
  EXPECT_EQ(2, lock_rank::HeldLockCount());
  queue.Unlock();
  engine.Unlock();
  EXPECT_EQ(0, lock_rank::HeldLockCount());
}

// ---------------------------------------------------------------------------
// I/O-under-lock detection
// ---------------------------------------------------------------------------

TEST(LockRankDeathTest, FsyncUnderEngineMuAborts) {
  ASSERT_DEATH(
      {
        // The scripted LockCheckingEnv case from ISSUE 8: an fsync while a
        // lock ranked like ShardEngine::mu_ is held must be caught.
        MemEnv base;
        LockCheckingEnv env(&base);
        std::unique_ptr<WritableFile> file;
        ASSERT_TRUE(env.NewWritableFile("/wal", &file).ok());
        ASSERT_TRUE(file->Append("payload").ok());
        Mutex engine_mu(LockRank::kEngineMu, "death.io_engine_mu");
        engine_mu.Lock();
        (void)file->Sync();
      },
      "I/O under lock: Sync");
}

TEST(LockRankDeathTest, ReadUnderLeafLockAborts) {
  ASSERT_DEATH(
      {
        MemEnv env;  // MemEnv carries the detector hooks directly.
        ASSERT_TRUE(WriteStringToFile(&env, "contents", "/sst").ok());
        std::unique_ptr<RandomAccessFile> file;
        ASSERT_TRUE(env.NewRandomAccessFile("/sst", &file).ok());
        Mutex stripe(LockRank::kBlockCacheShard, "death.io_cache_stripe");
        stripe.Lock();
        char scratch[8];
        Slice result;
        (void)file->Read(0, 8, &result, scratch);
      },
      "I/O under lock: Read");
}

TEST(LockRankTest, IoAllowedSectionSuppressesDetector) {
  MemEnv base;
  LockCheckingEnv env(&base);
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile("/manifest", &file).ok());
  Mutex vs_mu(LockRank::kVersionSet, "test.version_set_mu");
  vs_mu.Lock();
  {
    lock_rank::IoAllowedSection io(
        "Test twin of the manifest-install escape: I/O under "
        "VersionSet-ranked lock is the documented design.");
    EXPECT_TRUE(file->Append("edit").ok());
    EXPECT_TRUE(file->Sync().ok());
  }
  vs_mu.Unlock();
}

TEST(LockRankTest, IoAllowedByRankNeedsNoSection) {
  // commit_mu_'s rank is io-allowed by declaration: the COMMITLOG fsync
  // under it IS the 2PC commit point.
  MemEnv env;
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile("/COMMITLOG", &file).ok());
  Mutex commit_mu(LockRank::kCommitMu, "test.commit_mu");
  commit_mu.Lock();
  EXPECT_TRUE(file->Append("marker").ok());
  EXPECT_TRUE(file->Sync().ok());
  commit_mu.Unlock();
}

// ---------------------------------------------------------------------------
// Production topology: the N=4 2PC commit path is rank-clean
// ---------------------------------------------------------------------------

class ShardedRankCleanTest : public ::testing::Test {
 protected:
  ShardedRankCleanTest() {
    options_.env = &env_;
    options_.write_buffer_size = 4 << 10;  // Force WAL rotations + flushes.
    options_.max_bytes_for_level_base = 32 << 10;
    options_.target_file_size = 8 << 10;
    options_.block_size = 1024;
    options_.num_shards = 4;
    options_.shard_split_keys = {"g", "n", "t"};
  }

  static std::string Key(int i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%c%04d", 'a' + (i % 26), i);
    return buf;
  }

  MemEnv env_;
  Options options_;
};

TEST_F(ShardedRankCleanTest, CrossShardCommitsSnapshotsAndScans) {
  // Every operation here runs with the validator armed; any ordering or
  // I/O-under-lock slip in the commit_mu_ → writer_queue_mu_ → mu_ → leaf
  // chain aborts the test. Mixed sizes force group commit, WAL rotation,
  // flushes, and cross-shard 2PC (batches spanning all four ranges).
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options_, "/rankclean", &db).ok());
  ASSERT_EQ(4, db->num_shards());

  for (int round = 0; round < 30; ++round) {
    WriteBatch batch;
    for (int i = 0; i < 16; ++i) {
      int k = round * 16 + i;
      batch.Put(Key(k), std::string(64, static_cast<char>('a' + (k % 26))));
    }
    batch.Delete(Key(round));
    ASSERT_TRUE(db->Write(WriteOptions(), &batch).ok());
  }

  uint64_t snapshot = db->GetSnapshot();
  ASSERT_TRUE(db->Put(WriteOptions(), "zzz-post-snapshot", "v").ok());

  // Cross-shard consistent scan at the snapshot plus a current scan.
  for (uint64_t snap : {snapshot, uint64_t{0}}) {
    ReadOptions ro;
    ro.snapshot_seqno = snap;
    auto iter = db->NewIterator(ro);
    int entries = 0;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      ++entries;
    }
    EXPECT_TRUE(iter->status().ok());
    EXPECT_GT(entries, 0);
  }
  db->ReleaseSnapshot(snapshot);

  std::string value;
  EXPECT_TRUE(db->Get(ReadOptions(), Key(470), &value).ok());
  EXPECT_EQ(0, lock_rank::HeldLockCount());
  db.reset();

  // Reopen: recovery (WAL replay + manifest rebuild + 2PC resolution) must
  // also be rank-clean.
  ASSERT_TRUE(DB::Open(options_, "/rankclean", &db).ok());
  EXPECT_TRUE(db->Get(ReadOptions(), Key(470), &value).ok());
}

}  // namespace
}  // namespace lsmlab

#endif  // LSMLAB_LOCK_RANK_CHECKS
