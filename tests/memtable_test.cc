#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "db/dbformat.h"
#include "memtable/memtable.h"
#include "memtable/skiplist.h"
#include "util/arena.h"
#include "util/comparator.h"
#include "util/random.h"

namespace lsmlab {
namespace {

// ------------------------------------------------------------- dbformat ----

TEST(DbFormatTest, InternalKeyRoundTrip) {
  std::string encoded;
  AppendInternalKey(&encoded, ParsedInternalKey("user-key", 1234, kTypeValue));
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(encoded, &parsed));
  EXPECT_EQ("user-key", parsed.user_key.ToString());
  EXPECT_EQ(1234u, parsed.sequence);
  EXPECT_EQ(kTypeValue, parsed.type);
}

TEST(DbFormatTest, ParseRejectsShortKeys) {
  ParsedInternalKey parsed;
  EXPECT_FALSE(ParseInternalKey(Slice("short"), &parsed));
}

TEST(DbFormatTest, InternalKeyOrdering) {
  InternalKeyComparator cmp(BytewiseComparator());
  auto make = [](const std::string& ukey, SequenceNumber seq, ValueType t) {
    std::string s;
    AppendInternalKey(&s, ParsedInternalKey(ukey, seq, t));
    return s;
  };
  // User key ascending dominates.
  EXPECT_LT(cmp.Compare(make("a", 1, kTypeValue), make("b", 100, kTypeValue)),
            0);
  // Same user key: higher sequence sorts first (newest first).
  EXPECT_LT(cmp.Compare(make("a", 5, kTypeValue), make("a", 4, kTypeValue)),
            0);
  // Same user key + sequence: higher type tag sorts first.
  EXPECT_LT(cmp.Compare(make("a", 5, kTypeValue),
                        make("a", 5, kTypeDeletion)),
            0);
}

TEST(DbFormatTest, LookupKeyForms) {
  LookupKey lkey("mykey", 42);
  EXPECT_EQ("mykey", lkey.user_key().ToString());
  EXPECT_EQ(lkey.user_key().size() + 8, lkey.internal_key().size());
  EXPECT_GT(lkey.memtable_key().size(), lkey.internal_key().size());
  EXPECT_EQ(42u, ExtractSequence(lkey.internal_key()));
}

TEST(DbFormatTest, LookupKeyLongKeyHeapPath) {
  std::string long_key(500, 'k');
  LookupKey lkey(long_key, 7);
  EXPECT_EQ(long_key, lkey.user_key().ToString());
}

TEST(DbFormatTest, SeekKeyFindsAllOlderEntries) {
  // A lookup key at snapshot S must sort <= any entry of the same user key
  // with sequence <= S, and > entries with sequence > S.
  InternalKeyComparator cmp(BytewiseComparator());
  LookupKey lkey("k", 10);
  auto make = [](SequenceNumber seq) {
    std::string s;
    AppendInternalKey(&s, ParsedInternalKey("k", seq, kTypeValue));
    return s;
  };
  EXPECT_LE(cmp.Compare(lkey.internal_key(), make(10)), 0);
  EXPECT_LE(cmp.Compare(lkey.internal_key(), make(3)), 0);
  EXPECT_GT(cmp.Compare(lkey.internal_key(), make(11)), 0);
}

// ------------------------------------------------------------- skiplist ----

struct IntComparator {
  int operator()(const int& a, const int& b) const {
    return (a < b) ? -1 : (a > b) ? 1 : 0;
  }
};

TEST(SkipListTest, InsertAndContains) {
  Arena arena;
  SkipList<int, IntComparator> list(IntComparator(), &arena);
  Random rnd(301);
  std::set<int> keys;
  for (int i = 0; i < 2000; ++i) {
    int key = static_cast<int>(rnd.Uniform(10000));
    if (keys.insert(key).second) {
      list.Insert(key);
    }
  }
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(keys.count(i) > 0, list.Contains(i)) << i;
  }
}

TEST(SkipListTest, IterationIsSorted) {
  Arena arena;
  SkipList<int, IntComparator> list(IntComparator(), &arena);
  std::set<int> keys;
  Random rnd(99);
  for (int i = 0; i < 500; ++i) {
    int key = static_cast<int>(rnd.Uniform(100000));
    if (keys.insert(key).second) {
      list.Insert(key);
    }
  }
  SkipList<int, IntComparator>::Iterator iter(&list);
  iter.SeekToFirst();
  for (int expected : keys) {
    ASSERT_TRUE(iter.Valid());
    EXPECT_EQ(expected, iter.key());
    iter.Next();
  }
  EXPECT_FALSE(iter.Valid());
}

TEST(SkipListTest, SeekSemantics) {
  Arena arena;
  SkipList<int, IntComparator> list(IntComparator(), &arena);
  for (int k : {10, 20, 30}) {
    list.Insert(k);
  }
  SkipList<int, IntComparator>::Iterator iter(&list);
  iter.Seek(15);
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(20, iter.key());
  iter.Seek(20);
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(20, iter.key());
  iter.Seek(31);
  EXPECT_FALSE(iter.Valid());
  iter.SeekToLast();
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(30, iter.key());
}

// ------------------------------------------------------------- memtable ----

class MemTableTest : public ::testing::TestWithParam<MemTableRepType> {
 protected:
  MemTableTest() : internal_cmp_(BytewiseComparator()) {}

  std::unique_ptr<MemTable> NewTable() {
    return std::make_unique<MemTable>(&internal_cmp_, GetParam(), 64);
  }

  // Point-get helper at the given snapshot.
  bool Get(MemTable* table, const std::string& key, SequenceNumber snapshot,
           std::string* value, ValueType* type) {
    LookupKey lkey(key, snapshot);
    return table->Get(lkey, value, type);
  }

  InternalKeyComparator internal_cmp_;
};

TEST_P(MemTableTest, AddAndGet) {
  auto table = NewTable();
  table->Add(1, kTypeValue, "apple", "red");
  table->Add(2, kTypeValue, "banana", "yellow");

  std::string value;
  ValueType type;
  ASSERT_TRUE(Get(table.get(), "apple", 100, &value, &type));
  EXPECT_EQ(kTypeValue, type);
  EXPECT_EQ("red", value);
  ASSERT_TRUE(Get(table.get(), "banana", 100, &value, &type));
  EXPECT_EQ("yellow", value);
  EXPECT_FALSE(Get(table.get(), "cherry", 100, &value, &type));
}

TEST_P(MemTableTest, NewerVersionShadowsOlder) {
  auto table = NewTable();
  table->Add(1, kTypeValue, "k", "v1");
  table->Add(2, kTypeValue, "k", "v2");
  table->Add(3, kTypeValue, "k", "v3");

  std::string value;
  ValueType type;
  ASSERT_TRUE(Get(table.get(), "k", 100, &value, &type));
  EXPECT_EQ("v3", value);
}

TEST_P(MemTableTest, SnapshotReadsSeeOldVersions) {
  auto table = NewTable();
  table->Add(1, kTypeValue, "k", "v1");
  table->Add(5, kTypeValue, "k", "v5");

  std::string value;
  ValueType type;
  // Snapshot at 3 sees only the seq<=3 version.
  ASSERT_TRUE(Get(table.get(), "k", 3, &value, &type));
  EXPECT_EQ("v1", value);
  ASSERT_TRUE(Get(table.get(), "k", 5, &value, &type));
  EXPECT_EQ("v5", value);
}

TEST_P(MemTableTest, TombstoneResolvesAsDeletion) {
  auto table = NewTable();
  table->Add(1, kTypeValue, "k", "v1");
  table->Add(2, kTypeDeletion, "k", "");

  std::string value;
  ValueType type;
  ASSERT_TRUE(Get(table.get(), "k", 100, &value, &type));
  EXPECT_EQ(kTypeDeletion, type);
  // The old version is still visible below the tombstone's snapshot.
  ASSERT_TRUE(Get(table.get(), "k", 1, &value, &type));
  EXPECT_EQ(kTypeValue, type);
  EXPECT_EQ("v1", value);
}

TEST_P(MemTableTest, IterationSortedAndComplete) {
  auto table = NewTable();
  Random rnd(17);
  std::map<std::string, std::string> model;
  SequenceNumber seq = 1;
  for (int i = 0; i < 1000; ++i) {
    std::string key = "key" + std::to_string(rnd.Uniform(500));
    std::string value = "val" + std::to_string(i);
    model[key] = value;
    table->Add(seq++, kTypeValue, key, value);
  }

  auto iter = table->NewIterator();
  iter->SeekToFirst();
  std::string last_user_key;
  std::map<std::string, std::string> seen;
  std::string prev_internal;
  while (iter->Valid()) {
    Slice ikey = iter->key();
    if (!prev_internal.empty()) {
      EXPECT_LT(internal_cmp_.Compare(prev_internal, ikey), 0)
          << "iteration must be strictly sorted";
    }
    prev_internal.assign(ikey.data(), ikey.size());
    std::string user_key = ExtractUserKey(ikey).ToString();
    // Newest version of each user key comes first.
    if (seen.find(user_key) == seen.end()) {
      seen[user_key] = iter->value().ToString();
    }
    iter->Next();
  }
  EXPECT_EQ(model, seen);
}

TEST_P(MemTableTest, SeekPositionsAtLowerBound) {
  auto table = NewTable();
  table->Add(1, kTypeValue, "b", "vb");
  table->Add(2, kTypeValue, "d", "vd");

  auto iter = table->NewIterator();
  std::string target;
  AppendInternalKey(&target,
                    ParsedInternalKey("c", kMaxSequenceNumber,
                                      kValueTypeForSeek));
  iter->Seek(target);
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("d", ExtractUserKey(iter->key()).ToString());
}

TEST_P(MemTableTest, CountAndMemoryGrow) {
  auto table = NewTable();
  EXPECT_TRUE(table->Empty());
  size_t base_usage = table->ApproximateMemoryUsage();
  for (int i = 0; i < 100; ++i) {
    table->Add(static_cast<SequenceNumber>(i + 1), kTypeValue,
               "key" + std::to_string(i), std::string(100, 'v'));
  }
  EXPECT_EQ(100u, table->Count());
  EXPECT_FALSE(table->Empty());
  EXPECT_GT(table->ApproximateMemoryUsage(), base_usage);
  EXPECT_GT(table->DataSize(), 100u * 100u);
}

TEST_P(MemTableTest, EmptyValueAndBinaryKeys) {
  auto table = NewTable();
  std::string binary_key("\x00\x01\xff\x7f", 4);
  table->Add(1, kTypeValue, binary_key, "");
  std::string value = "sentinel";
  ValueType type;
  ASSERT_TRUE(Get(table.get(), binary_key, 10, &value, &type));
  EXPECT_EQ(kTypeValue, type);
  EXPECT_EQ("", value);
}

INSTANTIATE_TEST_SUITE_P(
    AllReps, MemTableTest,
    ::testing::Values(MemTableRepType::kSkipList, MemTableRepType::kVector,
                      MemTableRepType::kHashSkipList,
                      MemTableRepType::kHashLinkList),
    [](const ::testing::TestParamInfo<MemTableRepType>& info) {
      switch (info.param) {
        case MemTableRepType::kSkipList:
          return "SkipList";
        case MemTableRepType::kVector:
          return "Vector";
        case MemTableRepType::kHashSkipList:
          return "HashSkipList";
        case MemTableRepType::kHashLinkList:
          return "HashLinkList";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace lsmlab
