#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "db/db.h"
#include "db/merge_operator.h"
#include "io/mem_env.h"
#include "util/random.h"

namespace lsmlab {
namespace {

class MergeTest : public ::testing::Test {
 protected:
  MergeTest() {
    options_.env = &env_;
    options_.write_buffer_size = 4 << 10;
    options_.max_bytes_for_level_base = 32 << 10;
    options_.merge_operator = NewInt64AddOperator();
  }

  void Open() { ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok()); }

  std::string Get(const std::string& key) {
    std::string value;
    Status s = db_->Get(ReadOptions(), key, &value);
    return s.ok() ? value : (s.IsNotFound() ? "NOT_FOUND" : s.ToString());
  }

  MemEnv env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(MergeTest, RequiresOperator) {
  options_.merge_operator = nullptr;
  Open();
  EXPECT_TRUE(
      db_->Merge(WriteOptions(), "counter", "1").IsInvalidArgument());
}

TEST_F(MergeTest, MergeWithoutBase) {
  Open();
  ASSERT_TRUE(db_->Merge(WriteOptions(), "counter", "5").ok());
  ASSERT_TRUE(db_->Merge(WriteOptions(), "counter", "7").ok());
  EXPECT_EQ("12", Get("counter"));
}

TEST_F(MergeTest, MergeOnTopOfBaseValue) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "counter", "100").ok());
  ASSERT_TRUE(db_->Merge(WriteOptions(), "counter", "-30").ok());
  ASSERT_TRUE(db_->Merge(WriteOptions(), "counter", "5").ok());
  EXPECT_EQ("75", Get("counter"));
}

TEST_F(MergeTest, PutAfterMergeResets) {
  Open();
  ASSERT_TRUE(db_->Merge(WriteOptions(), "counter", "5").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "counter", "0").ok());
  ASSERT_TRUE(db_->Merge(WriteOptions(), "counter", "3").ok());
  EXPECT_EQ("3", Get("counter"));
}

TEST_F(MergeTest, DeleteCutsTheChain) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "counter", "100").ok());
  ASSERT_TRUE(db_->Delete(WriteOptions(), "counter").ok());
  ASSERT_TRUE(db_->Merge(WriteOptions(), "counter", "4").ok());
  // The merge sees no base (deleted): result is just the operand sum.
  EXPECT_EQ("4", Get("counter"));
}

TEST_F(MergeTest, DeletedMergeKeyIsNotFound) {
  Open();
  ASSERT_TRUE(db_->Merge(WriteOptions(), "counter", "4").ok());
  ASSERT_TRUE(db_->Delete(WriteOptions(), "counter").ok());
  EXPECT_EQ("NOT_FOUND", Get("counter"));
}

TEST_F(MergeTest, OperandsSurviveFlushesAndCompactions) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "counter", "1000").ok());
  ASSERT_TRUE(db_->Flush().ok());
  int64_t expected = 1000;
  Random rnd(5);
  for (int i = 0; i < 50; ++i) {
    int64_t delta = static_cast<int64_t>(rnd.Uniform(100)) - 50;
    expected += delta;
    ASSERT_TRUE(
        db_->Merge(WriteOptions(), "counter", std::to_string(delta)).ok());
    if (i % 10 == 9) {
      ASSERT_TRUE(db_->Flush().ok());
    }
  }
  EXPECT_EQ(std::to_string(expected), Get("counter"));
  ASSERT_TRUE(db_->CompactRange().ok());
  EXPECT_EQ(std::to_string(expected), Get("counter"))
      << "compaction must not drop merge operands";
}

TEST_F(MergeTest, ManyCountersAcrossTree) {
  Open();
  // Interleave puts and merges over many keys, spanning flushes.
  int64_t expected[40] = {};
  Random rnd(9);
  for (int i = 0; i < 4000; ++i) {
    int k = static_cast<int>(rnd.Uniform(40));
    std::string key = "c" + std::to_string(k);
    if (rnd.OneIn(10)) {
      int64_t base = static_cast<int64_t>(rnd.Uniform(1000));
      expected[k] = base;
      ASSERT_TRUE(
          db_->Put(WriteOptions(), key, std::to_string(base)).ok());
    } else {
      expected[k] += 1;
      ASSERT_TRUE(db_->Merge(WriteOptions(), key, "1").ok());
    }
  }
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());
  for (int k = 0; k < 40; ++k) {
    EXPECT_EQ(std::to_string(expected[k]), Get("c" + std::to_string(k)))
        << "counter " << k;
  }
}

TEST_F(MergeTest, IteratorResolvesMerges) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "a", "1").ok());
  ASSERT_TRUE(db_->Merge(WriteOptions(), "b", "2").ok());
  ASSERT_TRUE(db_->Merge(WriteOptions(), "b", "3").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "c", "10").ok());
  ASSERT_TRUE(db_->Merge(WriteOptions(), "c", "1").ok());
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->Merge(WriteOptions(), "c", "1").ok());

  auto iter = db_->NewIterator(ReadOptions());
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("a", iter->key().ToString());
  EXPECT_EQ("1", iter->value().ToString());
  iter->Next();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("b", iter->key().ToString());
  EXPECT_EQ("5", iter->value().ToString());
  iter->Next();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("c", iter->key().ToString());
  EXPECT_EQ("12", iter->value().ToString());
  iter->Next();
  EXPECT_FALSE(iter->Valid());
  EXPECT_TRUE(iter->status().ok());
}

TEST_F(MergeTest, IteratorMergeThenNextKeyNotSkipped) {
  // Regression guard: resolving a merge chain leaves the internal iterator
  // past the key; Next() must not skip the following key's newest version.
  Open();
  ASSERT_TRUE(db_->Merge(WriteOptions(), "a", "1").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "b", "old").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "b", "new").ok());

  auto iter = db_->NewIterator(ReadOptions());
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("a", iter->key().ToString());
  iter->Next();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("b", iter->key().ToString());
  EXPECT_EQ("new", iter->value().ToString());
}

TEST_F(MergeTest, MergeSurvivesReopen) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "counter", "10").ok());
  ASSERT_TRUE(db_->Merge(WriteOptions(), "counter", "5").ok());
  db_.reset();
  Open();
  ASSERT_TRUE(db_->Merge(WriteOptions(), "counter", "2").ok());
  EXPECT_EQ("17", Get("counter"));
}

TEST_F(MergeTest, SnapshotSeesOldOperandChain) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "counter", "10").ok());
  ASSERT_TRUE(db_->Merge(WriteOptions(), "counter", "1").ok());
  SequenceNumber snap = db_->GetSnapshot();
  ASSERT_TRUE(db_->Merge(WriteOptions(), "counter", "100").ok());

  ReadOptions at_snap;
  at_snap.snapshot_seqno = snap;
  std::string value;
  ASSERT_TRUE(db_->Get(at_snap, "counter", &value).ok());
  EXPECT_EQ("11", value);
  EXPECT_EQ("111", Get("counter"));
  db_->ReleaseSnapshot(snap);
}

TEST_F(MergeTest, CorruptOperandSurfacesError) {
  Open();
  ASSERT_TRUE(db_->Merge(WriteOptions(), "counter", "not-a-number").ok());
  std::string value;
  EXPECT_TRUE(db_->Get(ReadOptions(), "counter", &value).IsCorruption());
}

TEST_F(MergeTest, StringAppendOperator) {
  options_.merge_operator = NewStringAppendOperator(',');
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "list", "a").ok());
  ASSERT_TRUE(db_->Merge(WriteOptions(), "list", "b").ok());
  ASSERT_TRUE(db_->Merge(WriteOptions(), "list", "c").ok());
  EXPECT_EQ("a,b,c", Get("list"));
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->CompactRange().ok());
  EXPECT_EQ("a,b,c", Get("list"));
}

}  // namespace
}  // namespace lsmlab
