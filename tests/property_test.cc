// Property-style parameterized sweeps: invariants that must hold across
// whole ranges of knob settings, not just the defaults.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "db/db.h"
#include "filter/filter_policy.h"
#include "io/mem_env.h"
#include "table/block.h"
#include "table/block_builder.h"
#include "tuning/cost_model.h"
#include "tuning/monkey.h"
#include "util/random.h"

namespace lsmlab {
namespace {

// ---------------------------------------------------------------------------
// Blocks: round-trip across restart intervals.
// ---------------------------------------------------------------------------

class BlockRestartSweep : public ::testing::TestWithParam<int> {};

TEST_P(BlockRestartSweep, RoundTripAndSeek) {
  const int restart_interval = GetParam();
  BlockBuilder builder(BytewiseComparator(), restart_interval);
  std::map<std::string, std::string> model;
  Random rnd(restart_interval * 7 + 1);
  for (int i = 0; i < 400; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "key/%08llu",
             static_cast<unsigned long long>(rnd.Uniform(10000000)));
    model[key] = std::to_string(i);
  }
  for (const auto& [key, value] : model) {
    builder.Add(key, value);
  }
  Block block(builder.Finish().ToString());

  // Full iteration matches the model.
  auto iter = block.NewIterator(BytewiseComparator());
  iter->SeekToFirst();
  for (const auto& [key, value] : model) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(key, iter->key().ToString());
    EXPECT_EQ(value, iter->value().ToString());
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());

  // Random seeks land on the lower bound.
  for (int probe = 0; probe < 200; ++probe) {
    char target[32];
    snprintf(target, sizeof(target), "key/%08llu",
             static_cast<unsigned long long>(rnd.Uniform(10000000)));
    iter->Seek(target);
    auto expect = model.lower_bound(target);
    if (expect == model.end()) {
      EXPECT_FALSE(iter->Valid());
    } else {
      ASSERT_TRUE(iter->Valid());
      EXPECT_EQ(expect->first, iter->key().ToString());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RestartIntervals, BlockRestartSweep,
                         ::testing::Values(1, 2, 4, 16, 64, 1000));

// ---------------------------------------------------------------------------
// Bloom filters: no false negatives at any bits-per-key.
// ---------------------------------------------------------------------------

class BloomBitsSweep : public ::testing::TestWithParam<double> {};

TEST_P(BloomBitsSweep, NeverFalseNegative) {
  auto policy = NewBloomFilterPolicy(GetParam());
  std::vector<std::string> keys;
  for (int i = 0; i < 2000; ++i) {
    keys.push_back("k" + std::to_string(i * 37));
  }
  std::vector<Slice> slices(keys.begin(), keys.end());
  std::string filter;
  policy->CreateFilter(slices.data(), static_cast<int>(slices.size()),
                       &filter);
  for (const auto& key : keys) {
    EXPECT_TRUE(policy->KeyMayMatch(key, filter)) << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, BloomBitsSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 5.0, 10.0, 20.0));

// ---------------------------------------------------------------------------
// Monkey: invariants across (T, levels, budget).
// ---------------------------------------------------------------------------

struct MonkeyParam {
  double bits;
  int levels;
  int t;
};

class MonkeySweep : public ::testing::TestWithParam<MonkeyParam> {};

TEST_P(MonkeySweep, MonotoneAndBudgeted) {
  auto [bits, levels, t] = GetParam();
  auto allocation = MonkeyBitsPerLevel(bits, levels, t);
  ASSERT_EQ(static_cast<size_t>(levels), allocation.size());

  // Monotone non-increasing with depth.
  for (size_t i = 1; i < allocation.size(); ++i) {
    EXPECT_GE(allocation[i - 1] + 1e-9, allocation[i]);
  }
  // Weighted budget respected.
  double total_w = 0, total_bits = 0, w = 1;
  for (int i = 0; i < levels; ++i) {
    total_bits += w * allocation[static_cast<size_t>(i)];
    total_w += w;
    w *= t;
  }
  EXPECT_NEAR(total_bits / total_w, bits, bits * 0.02 + 0.02);
  // Never worse than uniform in expected false-positive I/Os.
  std::vector<double> uniform(static_cast<size_t>(levels), bits);
  EXPECT_LE(ExpectedFalsePositiveIos(allocation),
            ExpectedFalsePositiveIos(uniform) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MonkeySweep,
    ::testing::Values(MonkeyParam{2, 3, 4}, MonkeyParam{5, 5, 10},
                      MonkeyParam{10, 7, 10}, MonkeyParam{16, 4, 2},
                      MonkeyParam{1, 6, 8}, MonkeyParam{8, 2, 16}));

// ---------------------------------------------------------------------------
// Cost model: sanity across the whole design grid.
// ---------------------------------------------------------------------------

TEST(CostModelGrid, AllCostsFiniteAndPositive) {
  DataSpec data;
  data.num_entries = 20'000'000;
  for (DataLayout layout :
       {DataLayout::kLeveling, DataLayout::kTiering,
        DataLayout::kLazyLeveling, DataLayout::kOneLeveling}) {
    for (int t = 2; t <= 16; t += 2) {
      for (double bits : {0.0, 5.0, 10.0}) {
        for (bool monkey : {false, true}) {
          LsmDesign design;
          design.layout = layout;
          design.size_ratio = t;
          design.filter_bits_per_key = bits;
          design.monkey_allocation = monkey;
          CostModel model(design, data);
          EXPECT_GT(model.WriteCost(), 0);
          EXPECT_GE(model.PointLookupCost(), 1.0);
          EXPECT_GE(model.ZeroResultLookupCost(), 0);
          EXPECT_GT(model.ShortScanCost(), 0);
          EXPECT_GT(model.SpaceAmplification(), 0);
          EXPECT_GE(model.NumLevels(), 1);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end: DB correctness across block sizes and buffer sizes.
// ---------------------------------------------------------------------------

struct DbKnobParam {
  size_t block_size;
  size_t buffer_size;
  int restart_interval;
};

class DbKnobSweep : public ::testing::TestWithParam<DbKnobParam> {};

TEST_P(DbKnobSweep, ModelEquivalence) {
  auto [block_size, buffer_size, restart_interval] = GetParam();
  MemEnv env;
  Options options;
  options.env = &env;
  options.block_size = block_size;
  options.write_buffer_size = buffer_size;
  options.block_restart_interval = restart_interval;
  options.max_bytes_for_level_base = 32 << 10;
  options.filter_policy = NewBloomFilterPolicy(10);
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/knobs", &db).ok());

  std::map<std::string, std::string> model;
  Random rnd(block_size + buffer_size);
  for (int i = 0; i < 2500; ++i) {
    std::string key = "key" + std::to_string(rnd.Uniform(400));
    if (rnd.OneIn(12)) {
      model.erase(key);
      ASSERT_TRUE(db->Delete(WriteOptions(), key).ok());
    } else {
      std::string value(rnd.Uniform(200) + 1, 'v');
      model[key] = value;
      ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
    }
  }
  ASSERT_TRUE(db->WaitForBackgroundWork().ok());
  ASSERT_TRUE(db->ValidateTreeInvariants().ok());

  std::map<std::string, std::string> dumped;
  auto iter = db->NewIterator(ReadOptions());
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    dumped[iter->key().ToString()] = iter->value().ToString();
  }
  EXPECT_EQ(model, dumped);
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, DbKnobSweep,
    ::testing::Values(DbKnobParam{512, 2 << 10, 1},
                      DbKnobParam{1024, 8 << 10, 4},
                      DbKnobParam{4096, 8 << 10, 16},
                      DbKnobParam{16384, 32 << 10, 16},
                      DbKnobParam{4096, 64 << 10, 64}));

// ---------------------------------------------------------------------------
// Parallel background engine: level invariants and read-your-writes must
// hold under every layout while flushes and range-disjoint compactions
// (with subcompaction splitting) run concurrently.
// ---------------------------------------------------------------------------

class ParallelCompactionSweep : public ::testing::TestWithParam<DataLayout> {};

TEST_P(ParallelCompactionSweep, InvariantsHoldUnderConcurrentChurn) {
  MemEnv env;
  Options options;
  options.env = &env;
  options.data_layout = GetParam();
  options.write_buffer_size = 4 << 10;
  options.max_bytes_for_level_base = 16 << 10;
  options.target_file_size = 4 << 10;
  options.size_ratio = 3;
  options.background_threads = 4;
  options.max_subcompactions = 3;
  if (GetParam() == DataLayout::kLeveling) {
    options.level0_file_num_compaction_trigger = 1;
  }
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/par", &db).ok());

  // Writers churn disjoint key stripes so the final model is deterministic;
  // the main thread validates invariants while the engine compacts.
  constexpr int kWriters = 3;
  constexpr int kOpsPerWriter = 4000;
  std::vector<std::thread> writers;
  std::atomic<bool> failed{false};
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Random rnd(1000 + w);
      for (int i = 0; i < kOpsPerWriter && !failed.load(); ++i) {
        std::string key =
            "w" + std::to_string(w) + "/k" + std::to_string(rnd.Uniform(500));
        Status s = rnd.OneIn(9)
                       ? db->Delete(WriteOptions(), key)
                       : db->Put(WriteOptions(), key, std::string(40, 'v'));
        if (!s.ok()) {
          failed.store(true);
        }
      }
    });
  }
  for (int check = 0; check < 10 && !failed.load(); ++check) {
    Status s = db->ValidateTreeInvariants();
    ASSERT_TRUE(s.ok()) << s.ToString() << "\n" << db->DebugLevelSummary();
  }
  for (auto& t : writers) {
    t.join();
  }
  ASSERT_FALSE(failed.load());

  ASSERT_TRUE(db->WaitForBackgroundWork().ok());
  Status s = db->ValidateTreeInvariants();
  ASSERT_TRUE(s.ok()) << s.ToString() << "\n" << db->DebugLevelSummary();

  // Replay each writer's stream against a model; the DB must match exactly.
  std::map<std::string, std::string> model;
  for (int w = 0; w < kWriters; ++w) {
    Random rnd(1000 + w);
    for (int i = 0; i < kOpsPerWriter; ++i) {
      std::string key =
          "w" + std::to_string(w) + "/k" + std::to_string(rnd.Uniform(500));
      if (rnd.OneIn(9)) {
        model.erase(key);
      } else {
        model[key] = std::string(40, 'v');
      }
    }
  }
  std::map<std::string, std::string> dumped;
  auto iter = db->NewIterator(ReadOptions());
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    dumped[iter->key().ToString()] = iter->value().ToString();
  }
  EXPECT_EQ(model, dumped) << db->DebugLevelSummary();

  // The summary must reflect the engine actually having run.
  EXPECT_GT(db->statistics()->compactions.load(), 0u);
  std::string summary = db->DebugLevelSummary();
  EXPECT_NE(summary.find("running="), std::string::npos) << summary;
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, ParallelCompactionSweep,
    ::testing::Values(DataLayout::kLeveling, DataLayout::kTiering,
                      DataLayout::kLazyLeveling, DataLayout::kOneLeveling),
    [](const ::testing::TestParamInfo<DataLayout>& info) {
      switch (info.param) {
        case DataLayout::kLeveling:
          return "Leveling";
        case DataLayout::kTiering:
          return "Tiering";
        case DataLayout::kLazyLeveling:
          return "LazyLeveling";
        case DataLayout::kOneLeveling:
          return "OneLeveling";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace lsmlab
