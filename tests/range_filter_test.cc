#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <set>
#include <string>

#include "filter/range_filter.h"
#include "util/random.h"

namespace lsmlab {
namespace {

std::string NumKey(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llu",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

/// Codec for NumKey-formatted keys: parse the number so the 64-bit order
/// matches key order exactly.
uint64_t NumKeyCodec(const Slice& key) {
  uint64_t v = 0;
  for (size_t i = 0; i < key.size(); ++i) {
    char c = key[i];
    if (c < '0' || c > '9') break;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  return v;
}

enum class Kind { kPrefix, kRosetta };

class RangeFilterTest : public ::testing::TestWithParam<Kind> {
 protected:
  std::unique_ptr<RangeFilter> Make() {
    switch (GetParam()) {
      case Kind::kPrefix:
        // 14 decimal digits: each prefix covers a block of 100 keys, fine
        // enough to separate the gaps the tests probe.
        return NewPrefixBloomRangeFilter(14, 12.0);
      case Kind::kRosetta:
        return NewRosettaRangeFilter(22.0, 16, NumKeyCodec);
    }
    return nullptr;
  }
};

TEST_P(RangeFilterTest, NoFalseNegativesOnPointRanges) {
  auto filter = Make();
  std::set<uint64_t> keys;
  Random rnd(1);
  for (int i = 0; i < 2000; ++i) {
    uint64_t k = rnd.Uniform(1000000) * 100;  // Sparse key space.
    keys.insert(k);
    filter->AddKey(NumKey(k));
  }
  filter->Finish();
  for (uint64_t k : keys) {
    EXPECT_TRUE(filter->MayContainRange(NumKey(k), NumKey(k)))
        << "false negative at " << k;
  }
}

TEST_P(RangeFilterTest, NoFalseNegativesOnCoveringRanges) {
  auto filter = Make();
  std::set<uint64_t> keys;
  Random rnd(2);
  for (int i = 0; i < 1000; ++i) {
    uint64_t k = rnd.Uniform(10000000);
    keys.insert(k);
    filter->AddKey(NumKey(k));
  }
  filter->Finish();
  Random probe(3);
  for (int i = 0; i < 500; ++i) {
    // A range straddling a real key must never be rejected.
    auto it = keys.lower_bound(probe.Uniform(10000000));
    if (it == keys.end()) continue;
    uint64_t k = *it;
    uint64_t lo = k >= 5 ? k - 5 : 0;
    EXPECT_TRUE(filter->MayContainRange(NumKey(lo), NumKey(k + 5)));
  }
}

TEST_P(RangeFilterTest, EmptyRangesMostlyRejected) {
  auto filter = Make();
  std::set<uint64_t> keys;
  // Keys spaced 1000 apart: gaps of ~998 numbers are definitively empty.
  for (uint64_t i = 0; i < 2000; ++i) {
    keys.insert(i * 1000);
    filter->AddKey(NumKey(i * 1000));
  }
  filter->Finish();

  int false_positives = 0;
  const int kProbes = 1000;
  Random rnd(7);
  for (int i = 0; i < kProbes; ++i) {
    // Short range strictly inside a gap.
    uint64_t base = rnd.Uniform(1999) * 1000;
    uint64_t lo = base + 100 + rnd.Uniform(700);
    uint64_t hi = lo + 8;
    if (filter->MayContainRange(NumKey(lo), NumKey(hi))) {
      ++false_positives;
    }
  }
  double fpr = static_cast<double>(false_positives) / kProbes;
  EXPECT_LT(fpr, 0.5) << filter->Name() << " fpr=" << fpr;
}

TEST_P(RangeFilterTest, MemoryUsageReported) {
  auto filter = Make();
  for (int i = 0; i < 100; ++i) {
    filter->AddKey(NumKey(static_cast<uint64_t>(i) * 7));
  }
  filter->Finish();
  EXPECT_GT(filter->MemoryUsage(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Kinds, RangeFilterTest,
                         ::testing::Values(Kind::kPrefix, Kind::kRosetta),
                         [](const ::testing::TestParamInfo<Kind>& info) {
                           return info.param == Kind::kPrefix ? "PrefixBloom"
                                                              : "Rosetta";
                         });

TEST(RosettaTest, ShortRangesBeatPrefixBloomOnFpr) {
  // The tutorial's claim (§2.1.3): Rosetta fits short ranges; prefix Bloom
  // (coarse fixed-length prefixes) fits long ranges. Compare short-range
  // FPR at comparable memory.
  auto rosetta = NewRosettaRangeFilter(22.0, 16, NumKeyCodec);
  auto prefix = NewPrefixBloomRangeFilter(12, 12.0);
  std::set<uint64_t> keys;
  Random rnd(11);
  for (int i = 0; i < 5000; ++i) {
    uint64_t k = rnd.Uniform(100000000);
    keys.insert(k);
    rosetta->AddKey(NumKey(k));
    prefix->AddKey(NumKey(k));
  }
  rosetta->Finish();
  prefix->Finish();

  auto measure = [&](RangeFilter* f) {
    int fp = 0, probes = 0;
    Random prnd(13);
    while (probes < 500) {
      uint64_t lo = prnd.Uniform(100000000);
      uint64_t hi = lo + 4;
      auto it = keys.lower_bound(lo);
      if (it != keys.end() && *it <= hi) {
        continue;  // Not an empty range.
      }
      ++probes;
      if (f->MayContainRange(NumKey(lo), NumKey(hi))) {
        ++fp;
      }
    }
    return static_cast<double>(fp) / probes;
  };

  double rosetta_fpr = measure(rosetta.get());
  double prefix_fpr = measure(prefix.get());
  EXPECT_LT(rosetta_fpr, prefix_fpr)
      << "rosetta=" << rosetta_fpr << " prefix=" << prefix_fpr;
  EXPECT_LT(rosetta_fpr, 0.2);
}

TEST(PrefixBloomTest, LongRangeWithinPrefixIsCheap) {
  auto filter = NewPrefixBloomRangeFilter(8, 14.0);
  // All keys share 8-byte prefixes "prefixA\0".. style.
  for (int i = 0; i < 1000; ++i) {
    filter->AddKey("groupA__suffix" + std::to_string(i));
  }
  filter->Finish();
  // Long range inside an existing prefix: maybe (correct).
  EXPECT_TRUE(filter->MayContainRange("groupA__a", "groupA__zzzz"));
  // Long range inside an absent prefix: rejected.
  EXPECT_FALSE(filter->MayContainRange("groupB__a", "groupB__zzzz"));
}

TEST(DefaultCodecTest, PreservesOrderOfFirstEightBytes) {
  EXPECT_LT(DefaultKeyToUint64("aaaaaaaa"), DefaultKeyToUint64("aaaaaaab"));
  EXPECT_LT(DefaultKeyToUint64("a"), DefaultKeyToUint64("b"));
  EXPECT_EQ(DefaultKeyToUint64(""), 0u);
}

}  // namespace
}  // namespace lsmlab
