// Crash-safety and fault-injection tests: torn WAL tails, corrupted
// manifests, obsolete-file GC, and repeated reopen cycles.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "db/db.h"
#include "db/filename.h"
#include "io/fault_injection_env.h"
#include "io/mem_env.h"
#include "util/random.h"
#include "version/version_edit.h"

namespace lsmlab {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() {
    options_.env = &env_;
    options_.write_buffer_size = 8 << 10;
    options_.max_bytes_for_level_base = 64 << 10;
  }

  void Open() { ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok()); }
  void Close() { db_.reset(); }
  void Reopen() {
    Close();
    Open();
  }

  std::string Get(const std::string& key) {
    std::string value;
    Status s = db_->Get(ReadOptions(), key, &value);
    return s.ok() ? value : (s.IsNotFound() ? "NOT_FOUND" : s.ToString());
  }

  /// Finds files of `type` in the DB dir.
  std::vector<std::string> FilesOfType(FileType want) {
    std::vector<std::string> children, result;
    EXPECT_TRUE(env_.GetChildren("/db", &children).ok());
    for (const auto& child : children) {
      uint64_t number;
      FileType type;
      if (ParseFileName(child, &number, &type) && type == want) {
        result.push_back("/db/" + child);
      }
    }
    return result;
  }

  void TruncateFile(const std::string& path, size_t drop_bytes) {
    std::string contents;
    ASSERT_TRUE(ReadFileToString(&env_, path, &contents).ok());
    ASSERT_GT(contents.size(), drop_bytes);
    contents.resize(contents.size() - drop_bytes);
    ASSERT_TRUE(WriteStringToFile(&env_, contents, path).ok());
  }

  void CorruptFile(const std::string& path, size_t offset) {
    std::string contents;
    ASSERT_TRUE(ReadFileToString(&env_, path, &contents).ok());
    ASSERT_GT(contents.size(), offset);
    contents[offset] ^= 0x42;
    ASSERT_TRUE(WriteStringToFile(&env_, contents, path).ok());
  }

  MemEnv env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(RecoveryTest, TornWalTailLosesOnlyTheTornWrite) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "committed1", "v1").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "committed2", "v2").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "torn", "vX").ok());
  Close();

  // Simulate a crash mid-write: chop bytes off the newest WAL.
  auto logs = FilesOfType(FileType::kLogFile);
  ASSERT_FALSE(logs.empty());
  TruncateFile(logs.back(), 3);

  Open();
  EXPECT_EQ("v1", Get("committed1"));
  EXPECT_EQ("v2", Get("committed2"));
  // The torn record is gone — not corrupted data, just an unacknowledged
  // loss at the tail, the WAL contract.
  EXPECT_EQ("NOT_FOUND", Get("torn"));
}

TEST_F(RecoveryTest, TornWalTailToleratedInAbsoluteConsistencyMode) {
  // A cleanly truncated final record is the expected crash signature (the
  // writer died mid-append), not corruption: even the strict mode opens.
  options_.wal_recovery_mode = WalRecoveryMode::kAbsoluteConsistency;
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "committed", "v").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "torn", "vX").ok());
  Close();

  auto logs = FilesOfType(FileType::kLogFile);
  ASSERT_FALSE(logs.empty());
  TruncateFile(logs.back(), 3);

  Open();
  EXPECT_EQ("v", Get("committed"));
  EXPECT_EQ("NOT_FOUND", Get("torn"));
}

TEST_F(RecoveryTest, MidLogCorruptionFailsAbsoluteButKeepsPrefixInPit) {
  Open();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "k" + std::to_string(i),
                         "v" + std::to_string(i))
                    .ok());
  }
  Close();

  // Each Put is one WAL record: 7-byte header + batch rep (12-byte batch
  // header + 1 type + 1 keylen + 2 key + 1 vallen + 2 val = 19), i.e. 26
  // bytes. Flip a payload byte of the *second* record — mid-log, not a
  // truncated tail — so the checksum check trips.
  auto logs = FilesOfType(FileType::kLogFile);
  ASSERT_EQ(1u, logs.size());
  CorruptFile(logs.back(), 26 + 12);

  // Absolute consistency: replaying past a corrupt record would silently
  // drop acknowledged history, so the open must fail.
  Options absolute = options_;
  absolute.wal_recovery_mode = WalRecoveryMode::kAbsoluteConsistency;
  std::unique_ptr<DB> db;
  EXPECT_FALSE(DB::Open(absolute, "/db", &db).ok());

  // Point-in-time: recover the longest clean prefix — the first record —
  // and drop everything from the corruption onward.
  options_.wal_recovery_mode = WalRecoveryMode::kPointInTimeRecovery;
  Open();
  EXPECT_EQ("v0", Get("k0"));
  EXPECT_EQ("NOT_FOUND", Get("k1"));
  EXPECT_EQ("NOT_FOUND", Get("k2"));
  EXPECT_EQ("NOT_FOUND", Get("k3"));
  EXPECT_TRUE(db_->ValidateTreeInvariants().ok());
  // The recovered prefix is a working DB: new writes land normally.
  ASSERT_TRUE(db_->Put(WriteOptions(), "k1", "rewritten").ok());
  EXPECT_EQ("rewritten", Get("k1"));
}

TEST_F(RecoveryTest, PointInTimeRecoveryDeletesSkippedLaterLogs) {
  Open();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "k" + std::to_string(i),
                         "v" + std::to_string(i))
                    .ok());
  }
  Close();

  // Simulate a second live WAL (as left behind by a crash with a sealed-
  // but-unflushed memtable): a higher-numbered log whose records replay
  // after the first log's. Then corrupt the *first* log mid-record.
  auto logs = FilesOfType(FileType::kLogFile);
  ASSERT_EQ(1u, logs.size());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(&env_, logs.back(), &contents).ok());
  const std::string later_log = LogFileName("/db", 99);
  ASSERT_TRUE(WriteStringToFile(&env_, contents, later_log).ok());
  CorruptFile(logs.back(), 26 + 12);  // Record 2's payload (layout above).

  // Point-in-time recovery stops at the corruption in the first log. The
  // skipped later log must be deleted during this open — if it survived,
  // the next open would replay it after the new WAL, resurrecting the
  // dropped writes out of order.
  options_.wal_recovery_mode = WalRecoveryMode::kPointInTimeRecovery;
  Open();
  EXPECT_EQ("v0", Get("k0"));
  EXPECT_EQ("NOT_FOUND", Get("k1"));
  EXPECT_FALSE(env_.FileExists(later_log));
  // Its number was marked used, so the fresh WAL landed above it.
  for (const auto& log : FilesOfType(FileType::kLogFile)) {
    uint64_t number;
    FileType type;
    ASSERT_TRUE(ParseFileName(log.substr(strlen("/db/")), &number, &type));
    EXPECT_GT(number, 99u);
  }
  ASSERT_TRUE(db_->Put(WriteOptions(), "after", "recovered").ok());

  // The dropped writes stay dropped across another reopen.
  Reopen();
  EXPECT_EQ("v0", Get("k0"));
  EXPECT_EQ("NOT_FOUND", Get("k1"));
  EXPECT_EQ("NOT_FOUND", Get("k2"));
  EXPECT_EQ("NOT_FOUND", Get("k3"));
  EXPECT_EQ("recovered", Get("after"));
  EXPECT_TRUE(db_->ValidateTreeInvariants().ok());
}

TEST_F(RecoveryTest, ManifestHardErrorReadOnlyModeAndResume) {
  FaultInjectionEnv fault_env(&env_);
  options_.env = &fault_env;
  Open();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), "k" + std::to_string(i), "v").ok());
  }

  // The next manifest append fails: the flush builds its L0 file, then
  // LogAndApply tears — a hard error (the manifest write point is lost).
  FaultRule rule;
  rule.file_kinds = kFaultManifest;
  rule.ops = kFaultOpAppend;
  rule.one_in = 1;
  rule.max_failures = 1;
  fault_env.AddRule(rule);

  EXPECT_FALSE(db_->Flush().ok());
  ErrorState state = db_->BackgroundErrorState();
  EXPECT_TRUE(state.hard());
  EXPECT_EQ(ErrorSource::kManifest, state.source);
  // First-error provenance survives in the summary (the reporting-gap fix:
  // wait loops used to return whichever failure happened to be last).
  EXPECT_NE(std::string::npos,
            db_->DebugLevelSummary().find("first background error"));

  // Read-only mode: reads serve, writes fail fast.
  EXPECT_EQ("v", Get("k0"));
  EXPECT_FALSE(db_->Put(WriteOptions(), "rejected", "x").ok());

  // Resume rolls to a fresh manifest and reschedules the flush.
  ASSERT_TRUE(db_->Resume().ok());
  EXPECT_TRUE(db_->BackgroundErrorState().ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "after", "resumed").ok());
  ASSERT_TRUE(db_->Flush().ok());

  // The rolled manifest is complete: a reopen sees everything.
  Reopen();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ("v", Get("k" + std::to_string(i)));
  }
  EXPECT_EQ("resumed", Get("after"));
  EXPECT_TRUE(db_->ValidateTreeInvariants().ok());
}

TEST_F(RecoveryTest, RepeatedReopenPreservesEverything) {
  Open();
  std::map<std::string, std::string> model;
  Random rnd(3);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 400; ++i) {
      std::string key = "key" + std::to_string(rnd.Uniform(300));
      std::string value = "r" + std::to_string(round) + "-" +
                          std::to_string(i);
      model[key] = value;
      ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
    }
    Reopen();
    for (const auto& [key, value] : model) {
      ASSERT_EQ(value, Get(key)) << "round " << round << " key " << key;
    }
  }
}

TEST_F(RecoveryTest, RecoveryAfterCompactionKeepsOnlyLiveFiles) {
  Open();
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), "key" + std::to_string(i % 500),
                 std::string(64, 'v'))
            .ok());
  }
  ASSERT_TRUE(db_->CompactRange().ok());
  size_t tables_after_compact = FilesOfType(FileType::kTableFile).size();
  Reopen();
  // Reopen must not resurrect deleted inputs nor lose live outputs.
  EXPECT_EQ(tables_after_compact,
            FilesOfType(FileType::kTableFile).size());
  EXPECT_EQ(500u, db_->CountLiveEntries());
  EXPECT_TRUE(db_->ValidateTreeInvariants().ok());
}

TEST_F(RecoveryTest, OrphanCompactionOutputIsCollectedOnReopen) {
  Open();
  std::map<std::string, std::string> model;
  for (int i = 0; i < 1500; ++i) {
    std::string key = "key" + std::to_string(i % 400);
    std::string value = "v" + std::to_string(i);
    model[key] = value;
    ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
  }
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());
  Close();

  // Simulate a crash mid-compaction: an output table was fully written but
  // the job died before its VersionEdit reached the manifest. Because the
  // stitched edit is one atomic manifest record, recovery sees either the
  // whole result or (as here) none of it — the file is just an orphan.
  std::string orphan = TableFileName("/db", 999999);
  ASSERT_TRUE(
      WriteStringToFile(&env_, std::string(2048, 'x'), orphan).ok());

  Open();
  // All committed data intact; the orphan was garbage-collected.
  for (const auto& [key, value] : model) {
    ASSERT_EQ(value, Get(key)) << key;
  }
  EXPECT_FALSE(env_.FileExists(orphan));
  EXPECT_TRUE(db_->ValidateTreeInvariants().ok());
}

TEST_F(RecoveryTest, ShutdownWithParallelCompactionsInFlightLosesNothing) {
  // Aggressive settings so several compactions are admitted, then the DB is
  // closed while they run: shutdown aborts them, their partial outputs are
  // removed, and every acknowledged write must survive reopen via WAL/SSTs.
  options_.write_buffer_size = 4 << 10;
  options_.max_bytes_for_level_base = 16 << 10;
  options_.target_file_size = 4 << 10;
  options_.background_threads = 4;
  options_.max_subcompactions = 3;
  Open();
  std::map<std::string, std::string> model;
  Random rnd(91);
  for (int i = 0; i < 5000; ++i) {
    std::string key = "key" + std::to_string(rnd.Uniform(600));
    std::string value = "v" + std::to_string(i);
    model[key] = value;
    ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
  }
  // No drain: close with the background engine mid-flight.
  Close();

  Open();
  for (const auto& [key, value] : model) {
    ASSERT_EQ(value, Get(key)) << key;
  }
  EXPECT_TRUE(db_->ValidateTreeInvariants().ok());
  // The engine must come back up and settle the leftover backlog.
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());
  EXPECT_TRUE(db_->ValidateTreeInvariants().ok());
}

TEST_F(RecoveryTest, ObsoleteWalsAreRemoved) {
  Open();
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "key" + std::to_string(i),
                         std::string(64, 'v'))
                    .ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  // After a flush, only the active WAL should remain.
  EXPECT_LE(FilesOfType(FileType::kLogFile).size(), 1u);
}

TEST_F(RecoveryTest, CorruptManifestFailsOpenCleanly) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "v").ok());
  ASSERT_TRUE(db_->Flush().ok());
  Close();

  auto manifests = FilesOfType(FileType::kManifestFile);
  ASSERT_FALSE(manifests.empty());
  CorruptFile(manifests.back(), 12);

  std::unique_ptr<DB> db;
  Status s = DB::Open(options_, "/db", &db);
  // A corrupted manifest must surface as an error, never a silent
  // half-recovered database.
  EXPECT_FALSE(s.ok());
}

TEST_F(RecoveryTest, MissingCurrentRecoversWalResidentWrites) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "in-wal", "recovered").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "flushed", "orphaned").ok());
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "post-flush", "recovered2").ok());
  Close();
  // Losing CURRENT loses the manifest pointer: with create_if_missing the
  // DB reinitializes its metadata, orphaning flushed SSTables — but WAL
  // files still on disk are replayed, so unflushed writes survive.
  ASSERT_TRUE(env_.RemoveFile(CurrentFileName("/db")).ok());
  Open();
  EXPECT_EQ("recovered2", Get("post-flush"));
  EXPECT_EQ("NOT_FOUND", Get("flushed"));  // Its SST is orphaned.
}

TEST_F(RecoveryTest, SequenceNumbersResumeAfterReopen) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "old").ok());
  Reopen();
  // A new write after reopen must shadow the pre-reopen write: sequence
  // numbers may never regress.
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "new").ok());
  Reopen();
  EXPECT_EQ("new", Get("k"));
}

TEST_F(RecoveryTest, LargeWalRecoverySpillsToL0) {
  // A WAL bigger than the write buffer must flush to L0 tables during
  // replay rather than building an oversized memtable.
  options_.write_buffer_size = 4 << 10;
  Open();
  std::map<std::string, std::string> model;
  for (int i = 0; i < 500; ++i) {
    std::string key = "key" + std::to_string(i);
    std::string value(100, static_cast<char>('a' + i % 26));
    model[key] = value;
    ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
  }
  Reopen();
  for (const auto& [key, value] : model) {
    EXPECT_EQ(value, Get(key));
  }
  EXPECT_TRUE(db_->ValidateTreeInvariants().ok());
}

TEST_F(RecoveryTest, VersionEditRoundTrip) {
  VersionEdit edit;
  edit.SetComparatorName("cmp-name");
  edit.SetLogNumber(42);
  edit.SetNextFileNumber(99);
  edit.SetLastSequence(123456789);
  FileMetaData f;
  f.file_number = 7;
  f.file_size = 4096;
  f.smallest = InternalKey("aaa", 10, kTypeValue);
  f.largest = InternalKey("zzz", 5, kTypeDeletion);
  f.num_entries = 100;
  f.num_tombstones = 3;
  f.creation_time_micros = 111;
  f.oldest_tombstone_time_micros = 110;
  edit.AddFile(2, f);
  edit.RemoveFile(1, 6);

  std::string encoded;
  edit.EncodeTo(&encoded);
  VersionEdit decoded;
  ASSERT_TRUE(decoded.DecodeFrom(encoded).ok());
  EXPECT_EQ("cmp-name", decoded.comparator());
  EXPECT_EQ(42u, decoded.log_number());
  EXPECT_EQ(99u, decoded.next_file_number());
  EXPECT_EQ(123456789u, decoded.last_sequence());
  ASSERT_EQ(1u, decoded.new_files().size());
  const auto& [level, nf] = decoded.new_files()[0];
  EXPECT_EQ(2, level);
  EXPECT_EQ(7u, nf.file_number);
  EXPECT_EQ("aaa", nf.smallest.user_key().ToString());
  EXPECT_EQ("zzz", nf.largest.user_key().ToString());
  EXPECT_EQ(3u, nf.num_tombstones);
  EXPECT_EQ(1u, decoded.deleted_files().count({1, 6}));
}

TEST_F(RecoveryTest, VersionEditRejectsGarbage) {
  VersionEdit edit;
  EXPECT_TRUE(edit.DecodeFrom(Slice("\x07garbage-bytes")).IsCorruption());
}

TEST_F(RecoveryTest, VersionEditRejectsTrailingGarbage) {
  // Fuzzer-derived regression (fuzz_version_edit): a well-formed edit with
  // bytes appended used to decode OK, silently swallowing the tail. A lone
  // 0xff is a truncated tag varint — the minimal such suffix.
  VersionEdit edit;
  edit.SetLogNumber(3);
  edit.SetNextFileNumber(4);
  edit.SetLastSequence(5);
  std::string encoded;
  edit.EncodeTo(&encoded);

  VersionEdit decoded;
  ASSERT_TRUE(decoded.DecodeFrom(encoded).ok());
  encoded.push_back('\xff');
  VersionEdit rejected;
  EXPECT_TRUE(rejected.DecodeFrom(encoded).IsCorruption());
}

TEST_F(RecoveryTest, VersionEditAcceptsConcatenatedEdits) {
  // Two encodings back to back are still one well-formed tag stream (the
  // manifest group-record shape), so the trailing-garbage check must not
  // reject them: later fields simply win.
  VersionEdit first, second;
  first.SetLogNumber(10);
  first.SetNextFileNumber(11);
  second.SetLogNumber(20);
  second.SetLastSequence(99);
  std::string encoded;
  first.EncodeTo(&encoded);
  second.EncodeTo(&encoded);

  VersionEdit decoded;
  ASSERT_TRUE(decoded.DecodeFrom(encoded).ok());
  EXPECT_EQ(20u, decoded.log_number());
  EXPECT_EQ(11u, decoded.next_file_number());
  EXPECT_EQ(99u, decoded.last_sequence());
}

TEST_F(RecoveryTest, ComparatorMismatchRefusesOpen) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "v").ok());
  ASSERT_TRUE(db_->Flush().ok());
  Close();

  // Reopen with a comparator claiming a different name.
  class RenamedComparator : public Comparator {
   public:
    int Compare(const Slice& a, const Slice& b) const override {
      return a.compare(b);
    }
    const char* Name() const override { return "other.Comparator"; }
    void FindShortestSeparator(std::string*, const Slice&) const override {}
    void FindShortSuccessor(std::string*) const override {}
  };
  RenamedComparator other;
  Options options = options_;
  options.comparator = &other;
  std::unique_ptr<DB> db;
  Status s = DB::Open(options, "/db", &db);
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace lsmlab
