// Tests of the range-sharded facade (DESIGN.md, "Sharding architecture"):
// routing, topology persistence, cross-shard batch atomicity across reopen,
// multi-shard snapshots and iterators, sharded DestroyDB, the N>1 debug
// summary — and the headline equivalence sweep proving ShardedDB(N=4) and
// the classic single-engine layout produce identical results for the same
// randomized operation trace.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "db/db.h"
#include "db/filename.h"
#include "db/merge_operator.h"
#include "db/shard_directory.h"
#include "io/mem_env.h"
#include "util/random.h"

namespace lsmlab {
namespace {

class ShardedDBTest : public ::testing::Test {
 protected:
  ShardedDBTest() {
    options_.env = &env_;
    options_.write_buffer_size = 8 << 10;
    options_.max_bytes_for_level_base = 64 << 10;
    options_.target_file_size = 16 << 10;
    options_.block_size = 1024;
    options_.filter_policy = NewBloomFilterPolicy(10.0);
    options_.block_cache_capacity = 1 << 20;
  }

  Options ShardedOptions(int num_shards,
                         std::vector<std::string> splits = {}) const {
    Options o = options_;
    o.num_shards = num_shards;
    o.shard_split_keys = std::move(splits);
    return o;
  }

  static std::string Key(int i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "key%04d", i);
    return buf;
  }

  static std::map<std::string, std::string> Dump(DB* db,
                                                 uint64_t snapshot = 0) {
    ReadOptions ro;
    ro.snapshot_seqno = snapshot;
    std::map<std::string, std::string> result;
    auto iter = db->NewIterator(ro);
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      result[iter->key().ToString()] = iter->value().ToString();
    }
    EXPECT_TRUE(iter->status().ok());
    return result;
  }

  MemEnv env_;
  Options options_;
};

// ---------------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------------

TEST_F(ShardedDBTest, SingleShardKeepsFlatLayout) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(ShardedOptions(1), "/flat", &db).ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "a", "1").ok());
  db.reset();
  // Classic layout: CURRENT at the root, no SHARDS, no COMMITLOG, no
  // shard subdirectories.
  EXPECT_TRUE(env_.FileExists(CurrentFileName("/flat")));
  EXPECT_FALSE(env_.FileExists(ShardsFileName("/flat")));
  EXPECT_FALSE(env_.FileExists(CommitLogFileName("/flat")));
  EXPECT_TRUE(ShardDirectory::ListShardDirs(&env_, "/flat").empty());
}

TEST_F(ShardedDBTest, ShardedLayoutCreatesTopologyAndShardDirs) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(
      DB::Open(ShardedOptions(4, {"g", "n", "t"}), "/sharded", &db).ok());
  EXPECT_EQ(4, db->num_shards());
  db.reset();
  EXPECT_TRUE(env_.FileExists(ShardsFileName("/sharded")));
  for (int k = 0; k < 4; ++k) {
    EXPECT_TRUE(env_.FileExists(
        CurrentFileName(ShardDirectory::ShardDirName("/sharded", k))));
  }
  EXPECT_EQ(4u, ShardDirectory::ListShardDirs(&env_, "/sharded").size());
}

TEST_F(ShardedDBTest, TopologyFileWinsOverOptionsOnReopen) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(
      DB::Open(ShardedOptions(4, {"g", "n", "t"}), "/topo", &db).ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "apple", "1").ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "zebra", "2").ok());
  db.reset();

  // Reopen asking for a different topology: the SHARDS file wins.
  ASSERT_TRUE(DB::Open(ShardedOptions(2, {"m"}), "/topo", &db).ok());
  EXPECT_EQ(4, db->num_shards());
  EXPECT_EQ((std::vector<std::string>{"g", "n", "t"}),
            db->shard_split_keys());
  std::string value;
  EXPECT_TRUE(db->Get(ReadOptions(), "apple", &value).ok());
  EXPECT_EQ("1", value);
  EXPECT_TRUE(db->Get(ReadOptions(), "zebra", &value).ok());
  EXPECT_EQ("2", value);
}

TEST_F(ShardedDBTest, ExistingFlatDBStaysSingleShard) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(ShardedOptions(1), "/legacy", &db).ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "a", "1").ok());
  db.reset();
  // A pre-sharding database reopened with num_shards=4 must not be split.
  ASSERT_TRUE(DB::Open(ShardedOptions(4), "/legacy", &db).ok());
  EXPECT_EQ(1, db->num_shards());
  std::string value;
  EXPECT_TRUE(db->Get(ReadOptions(), "a", &value).ok());
  EXPECT_EQ("1", value);
}

TEST_F(ShardedDBTest, DefaultSplitsAreUniformFirstByte) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(ShardedOptions(4), "/uniform", &db).ok());
  EXPECT_EQ(4, db->num_shards());
  const auto& splits = db->shard_split_keys();
  ASSERT_EQ(3u, splits.size());
  EXPECT_EQ(std::string(1, static_cast<char>(64)), splits[0]);
  EXPECT_EQ(std::string(1, static_cast<char>(128)), splits[1]);
  EXPECT_EQ(std::string(1, static_cast<char>(192)), splits[2]);
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

TEST_F(ShardedDBTest, KeysLandInTheirRangeShard) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(
      DB::Open(ShardedOptions(4, {"g", "n", "t"}), "/route", &db).ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "apple", "0").ok());   // < g: shard 0
  ASSERT_TRUE(db->Put(WriteOptions(), "grape", "1").ok());   // [g,n): shard 1
  ASSERT_TRUE(db->Put(WriteOptions(), "n", "2").ok());       // [n,t): shard 2
  ASSERT_TRUE(db->Put(WriteOptions(), "zebra", "3").ok());   // >= t: shard 3
  ASSERT_TRUE(db->Flush().ok());
  db.reset();

  // Each shard directory holds exactly its own keys: one table file per
  // shard, and reopening each shard dir standalone sees only its key.
  const char* keys[4] = {"apple", "grape", "n", "zebra"};
  for (int k = 0; k < 4; ++k) {
    std::unique_ptr<DB> shard;
    Options o = options_;  // num_shards=1 opens the shard dir flat.
    ASSERT_TRUE(
        DB::Open(o, ShardDirectory::ShardDirName("/route", k), &shard).ok());
    auto contents = Dump(shard.get());
    EXPECT_EQ(1u, contents.size()) << "shard " << k;
    EXPECT_EQ(1u, contents.count(keys[k])) << "shard " << k;
  }
}

TEST_F(ShardedDBTest, ScanMergesShardsInKeyOrder) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(
      DB::Open(ShardedOptions(4, {"g", "n", "t"}), "/scan", &db).ok());
  // Insert in an order that interleaves shards.
  const std::vector<std::string> keys = {"x", "a", "p", "h", "b", "z", "m"};
  for (const auto& k : keys) {
    ASSERT_TRUE(db->Put(WriteOptions(), k, "v" + k).ok());
  }
  auto iter = db->NewIterator(ReadOptions());
  std::vector<std::string> seen;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    seen.push_back(iter->key().ToString());
  }
  EXPECT_EQ((std::vector<std::string>{"a", "b", "h", "m", "p", "x", "z"}),
            seen);
  // Seek crosses shard boundaries.
  iter->Seek("n");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("p", iter->key().ToString());
}

// ---------------------------------------------------------------------------
// Cross-shard batches
// ---------------------------------------------------------------------------

TEST_F(ShardedDBTest, CrossShardBatchIsAtomicAndDurable) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(
      DB::Open(ShardedOptions(4, {"g", "n", "t"}), "/batch", &db).ok());
  WriteBatch batch;
  batch.Put("apple", "1");
  batch.Put("house", "2");
  batch.Put("queen", "3");
  batch.Put("zebra", "4");
  batch.Delete("missing");
  ASSERT_TRUE(db->Write(WriteOptions(), &batch).ok());
  EXPECT_EQ(1u, db->statistics()->cross_shard_batches.load());
  EXPECT_EQ(4u, db->statistics()->shard_prepares.load());
  EXPECT_EQ(4u, db->statistics()->shard_commits.load());

  auto contents = Dump(db.get());
  EXPECT_EQ(4u, contents.size());
  EXPECT_EQ("1", contents["apple"]);
  EXPECT_EQ("4", contents["zebra"]);

  // Survives reopen: commit markers (or the commit log) replay the batch
  // in every shard.
  db.reset();
  ASSERT_TRUE(DB::Open(ShardedOptions(4), "/batch", &db).ok());
  contents = Dump(db.get());
  EXPECT_EQ(4u, contents.size());
  EXPECT_EQ("2", contents["house"]);
  EXPECT_EQ("3", contents["queen"]);
}

TEST_F(ShardedDBTest, SingleShardBatchSkipsTwoPhaseCommit) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(
      DB::Open(ShardedOptions(4, {"g", "n", "t"}), "/fast", &db).ok());
  WriteBatch batch;
  batch.Put("aa", "1");
  batch.Put("ab", "2");  // Same shard.
  ASSERT_TRUE(db->Write(WriteOptions(), &batch).ok());
  EXPECT_EQ(0u, db->statistics()->cross_shard_batches.load());
  EXPECT_EQ(0u, db->statistics()->shard_prepares.load());
  std::string value;
  EXPECT_TRUE(db->Get(ReadOptions(), "ab", &value).ok());
  EXPECT_EQ("2", value);
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

TEST_F(ShardedDBTest, SnapshotCutsNeverSplitACrossShardBatch) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(
      DB::Open(ShardedOptions(4, {"g", "n", "t"}), "/snap", &db).ok());
  WriteBatch before;
  before.Put("apple", "old");
  before.Put("zebra", "old");
  ASSERT_TRUE(db->Write(WriteOptions(), &before).ok());

  const SequenceNumber snap = db->GetSnapshot();

  WriteBatch after;
  after.Put("apple", "new");
  after.Put("zebra", "new");
  ASSERT_TRUE(db->Write(WriteOptions(), &after).ok());

  // At the snapshot: both old. Live: both new. Never a mix.
  ReadOptions at_snap;
  at_snap.snapshot_seqno = snap;
  std::string a, z;
  ASSERT_TRUE(db->Get(at_snap, "apple", &a).ok());
  ASSERT_TRUE(db->Get(at_snap, "zebra", &z).ok());
  EXPECT_EQ("old", a);
  EXPECT_EQ("old", z);
  ASSERT_TRUE(db->Get(ReadOptions(), "apple", &a).ok());
  ASSERT_TRUE(db->Get(ReadOptions(), "zebra", &z).ok());
  EXPECT_EQ("new", a);
  EXPECT_EQ("new", z);

  // Snapshot-pinned iterator sees the old cut too.
  auto old_view = Dump(db.get(), snap);
  EXPECT_EQ("old", old_view["apple"]);
  EXPECT_EQ("old", old_view["zebra"]);
  db->ReleaseSnapshot(snap);
}

TEST_F(ShardedDBTest, SnapshotPinsSurviveFlushAndCompaction) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(
      DB::Open(ShardedOptions(2, {"m"}), "/snappin", &db).ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "a", "v1").ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "z", "v1").ok());
  const SequenceNumber snap = db->GetSnapshot();
  ASSERT_TRUE(db->Put(WriteOptions(), "a", "v2").ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "z", "v2").ok());
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->CompactRange().ok());
  ReadOptions at_snap;
  at_snap.snapshot_seqno = snap;
  std::string value;
  ASSERT_TRUE(db->Get(at_snap, "a", &value).ok());
  EXPECT_EQ("v1", value);
  ASSERT_TRUE(db->Get(at_snap, "z", &value).ok());
  EXPECT_EQ("v1", value);
  db->ReleaseSnapshot(snap);
}

// ---------------------------------------------------------------------------
// MultiGet
// ---------------------------------------------------------------------------

TEST_F(ShardedDBTest, MultiGetFansOutAndRealignsResults) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(
      DB::Open(ShardedOptions(4, {"g", "n", "t"}), "/mget", &db).ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "apple", "1").ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "house", "2").ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "queen", "3").ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "zebra", "4").ok());
  ASSERT_TRUE(db->Flush().ok());

  // Interleaved shard order, with misses mixed in.
  std::vector<Slice> keys = {"zebra", "apple", "nope1", "queen",
                             "house", "nope2"};
  std::vector<std::string> values;
  std::vector<Status> statuses = db->MultiGet(ReadOptions(), keys, &values);
  ASSERT_EQ(6u, statuses.size());
  EXPECT_EQ("4", values[0]);
  EXPECT_EQ("1", values[1]);
  EXPECT_TRUE(statuses[2].IsNotFound());
  EXPECT_EQ("3", values[3]);
  EXPECT_EQ("2", values[4]);
  EXPECT_TRUE(statuses[5].IsNotFound());
  EXPECT_EQ(1u, db->statistics()->multiget_batches.load());
  EXPECT_EQ(6u, db->statistics()->multiget_keys.load());
}

// ---------------------------------------------------------------------------
// Debug summary / DestroyDB
// ---------------------------------------------------------------------------

TEST_F(ShardedDBTest, ShardedSummaryListsEveryShardOnce) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(
      DB::Open(ShardedOptions(4, {"g", "n", "t"}), "/summary", &db).ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "apple", "1").ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "zebra", "2").ok());
  ASSERT_TRUE(db->Flush().ok());
  const std::string summary = db->DebugLevelSummary();
  EXPECT_NE(std::string::npos, summary.find("sharded db: 4 shards"));
  for (int k = 0; k < 4; ++k) {
    EXPECT_NE(std::string::npos,
              summary.find("shard " + std::to_string(k) + " ["))
        << summary;
  }
  // The shared statistics block appears exactly once.
  const std::string marker = "read path:";
  size_t first = summary.find(marker);
  ASSERT_NE(std::string::npos, first);
  EXPECT_EQ(std::string::npos, summary.find(marker, first + marker.size()));
  EXPECT_NE(std::string::npos, summary.find("cross-shard:"));
}

TEST_F(ShardedDBTest, DestroyDBRemovesShardDirectories) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(
      DB::Open(ShardedOptions(4, {"g", "n", "t"}), "/doomed", &db).ok());
  WriteBatch batch;
  batch.Put("apple", "1");
  batch.Put("zebra", "2");
  ASSERT_TRUE(db->Write(WriteOptions(), &batch).ok());
  ASSERT_TRUE(db->Flush().ok());
  db.reset();

  Options o = options_;
  ASSERT_TRUE(DestroyDB(o, "/doomed").ok());
  EXPECT_FALSE(env_.FileExists(ShardsFileName("/doomed")));
  EXPECT_FALSE(env_.FileExists(CommitLogFileName("/doomed")));
  for (int k = 0; k < 4; ++k) {
    EXPECT_FALSE(env_.FileExists(
        CurrentFileName(ShardDirectory::ShardDirName("/doomed", k))));
  }
  std::vector<std::string> children;
  Status s = env_.GetChildren("/doomed", &children);
  EXPECT_TRUE(s.IsNotFound() || children.empty());
}

// ---------------------------------------------------------------------------
// Equivalence sweep: ShardedDB(N=4) == single engine, same trace
// ---------------------------------------------------------------------------

TEST_F(ShardedDBTest, RandomizedTraceMatchesSingleShard) {
  Options merge_options = options_;
  merge_options.merge_operator = NewInt64AddOperator();

  std::unique_ptr<DB> flat, sharded;
  {
    Options o = merge_options;
    o.num_shards = 1;
    ASSERT_TRUE(DB::Open(o, "/equiv1", &flat).ok());
  }
  {
    Options o = merge_options;
    o.num_shards = 4;
    o.shard_split_keys = {Key(250), Key(500), Key(750)};
    ASSERT_TRUE(DB::Open(o, "/equiv4", &sharded).ok());
  }

  auto apply_both = [&](auto&& op) {
    op(flat.get());
    op(sharded.get());
  };

  Random rnd(20260809);
  std::vector<std::pair<SequenceNumber, SequenceNumber>> snapshots;
  for (int step = 0; step < 4000; ++step) {
    const int key_index = static_cast<int>(rnd.Uniform(1000));
    const std::string key = Key(key_index);
    switch (rnd.Uniform(20)) {
      case 0: {  // Cross-shard batch: same value to 3 spread-out keys.
        WriteBatch b1, b2;
        for (int j = 0; j < 3; ++j) {
          const std::string k = Key((key_index + 333 * j) % 1000);
          const std::string v = "batch" + std::to_string(step);
          b1.Put(k, v);
          b2.Put(k, v);
        }
        ASSERT_TRUE(flat->Write(WriteOptions(), &b1).ok());
        ASSERT_TRUE(sharded->Write(WriteOptions(), &b2).ok());
        break;
      }
      case 1:
        apply_both([&](DB* db) {
          ASSERT_TRUE(db->Delete(WriteOptions(), key).ok());
        });
        break;
      case 2: {
        // Int64-add merge (decimal operands) on a dedicated counter-key
        // range: merge and plain puts must not mix on one key.
        const std::string counter = "counter" + std::to_string(key_index % 7);
        const std::string operand = std::to_string(1 + key_index % 5);
        apply_both([&](DB* db) {
          ASSERT_TRUE(db->Merge(WriteOptions(), counter, operand).ok());
        });
        break;
      }
      case 3:
        if (snapshots.size() < 8) {
          snapshots.emplace_back(flat->GetSnapshot(), sharded->GetSnapshot());
        }
        break;
      case 4:
        apply_both([&](DB* db) { ASSERT_TRUE(db->Flush().ok()); });
        break;
      default:
        apply_both([&](DB* db) {
          ASSERT_TRUE(db->Put(WriteOptions(), key,
                              "v" + std::to_string(step))
                          .ok());
        });
        break;
    }
  }
  apply_both([&](DB* db) { ASSERT_TRUE(db->WaitForBackgroundWork().ok()); });

  // Full-scan equivalence, live and at every snapshot pair.
  EXPECT_EQ(Dump(flat.get()), Dump(sharded.get()));
  for (const auto& [flat_snap, sharded_snap] : snapshots) {
    EXPECT_EQ(Dump(flat.get(), flat_snap), Dump(sharded.get(), sharded_snap));
  }

  // Point-lookup and MultiGet equivalence over the whole key universe.
  std::vector<std::string> key_storage;
  key_storage.reserve(1007);
  for (int i = 0; i < 1000; ++i) {
    key_storage.push_back(Key(i));
  }
  for (int i = 0; i < 7; ++i) {
    key_storage.push_back("counter" + std::to_string(i));
  }
  std::vector<Slice> all_keys(key_storage.begin(), key_storage.end());
  std::vector<std::string> flat_values, sharded_values;
  std::vector<Status> flat_status =
      flat->MultiGet(ReadOptions(), all_keys, &flat_values);
  std::vector<Status> sharded_status =
      sharded->MultiGet(ReadOptions(), all_keys, &sharded_values);
  for (size_t i = 0; i < all_keys.size(); ++i) {
    EXPECT_EQ(flat_status[i].ok(), sharded_status[i].ok()) << key_storage[i];
    EXPECT_EQ(flat_status[i].IsNotFound(), sharded_status[i].IsNotFound())
        << key_storage[i];
    if (flat_status[i].ok()) {
      EXPECT_EQ(flat_values[i], sharded_values[i]) << key_storage[i];
    }
    std::string fv, sv;
    Status fs = flat->Get(ReadOptions(), all_keys[i], &fv);
    Status ss = sharded->Get(ReadOptions(), all_keys[i], &sv);
    EXPECT_EQ(fs.ok(), ss.ok()) << key_storage[i];
    if (fs.ok()) {
      EXPECT_EQ(fv, sv) << key_storage[i];
    }
  }

  for (const auto& [flat_snap, sharded_snap] : snapshots) {
    flat->ReleaseSnapshot(flat_snap);
    sharded->ReleaseSnapshot(sharded_snap);
  }

  // Both survive a reopen with identical contents.
  flat.reset();
  sharded.reset();
  {
    Options o = merge_options;
    o.num_shards = 1;
    ASSERT_TRUE(DB::Open(o, "/equiv1", &flat).ok());
  }
  {
    Options o = merge_options;
    ASSERT_TRUE(DB::Open(o, "/equiv4", &sharded).ok());
    EXPECT_EQ(4, sharded->num_shards());
  }
  EXPECT_EQ(Dump(flat.get()), Dump(sharded.get()));
  EXPECT_TRUE(flat->ValidateTreeInvariants().ok());
  EXPECT_TRUE(sharded->ValidateTreeInvariants().ok());
}

}  // namespace
}  // namespace lsmlab
