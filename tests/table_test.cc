#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "db/dbformat.h"
#include "db/statistics.h"
#include "filter/filter_policy.h"
#include "io/counting_env.h"
#include "io/mem_env.h"
#include "table/block.h"
#include "table/block_builder.h"
#include "table/format.h"
#include "table/learned_index.h"
#include "table/merging_iterator.h"
#include "table/table_builder.h"
#include "table/table_reader.h"
#include "util/coding.h"
#include "util/random.h"

namespace lsmlab {
namespace {

// ---------------------------------------------------------------- Block ----

TEST(BlockTest, BuildAndIterate) {
  BlockBuilder builder(BytewiseComparator(), 4);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 100; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "key%04d", i);
    std::string value = "value" + std::to_string(i);
    model[key] = value;
    builder.Add(key, value);
  }
  Block block(builder.Finish().ToString());

  auto iter = block.NewIterator(BytewiseComparator());
  iter->SeekToFirst();
  for (const auto& [key, value] : model) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(key, iter->key().ToString());
    EXPECT_EQ(value, iter->value().ToString());
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());
  EXPECT_TRUE(iter->status().ok());
}

TEST(BlockTest, SeekLowerBound) {
  BlockBuilder builder(BytewiseComparator(), 2);
  builder.Add("b", "1");
  builder.Add("d", "2");
  builder.Add("f", "3");
  Block block(builder.Finish().ToString());
  auto iter = block.NewIterator(BytewiseComparator());

  iter->Seek("a");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("b", iter->key().ToString());

  iter->Seek("d");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("d", iter->key().ToString());

  iter->Seek("e");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("f", iter->key().ToString());

  iter->Seek("g");
  EXPECT_FALSE(iter->Valid());
}

TEST(BlockTest, EmptyBlock) {
  BlockBuilder builder(BytewiseComparator(), 16);
  Block block(builder.Finish().ToString());
  auto iter = block.NewIterator(BytewiseComparator());
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
}

TEST(BlockTest, PrefixCompressionShrinksBlock) {
  // Keys sharing long prefixes must compress well vs restart-every-entry.
  auto build_size = [](int restart_interval) {
    BlockBuilder builder(BytewiseComparator(), restart_interval);
    for (int i = 0; i < 500; ++i) {
      char key[64];
      snprintf(key, sizeof(key), "a/very/long/shared/key/prefix/%06d", i);
      builder.Add(key, "v");
    }
    return builder.Finish().size();
  };
  EXPECT_LT(build_size(16), build_size(1) * 2 / 3);
}

TEST(BlockTest, RandomizedSeekMatchesModel) {
  Random rnd(1234);
  BlockBuilder builder(BytewiseComparator(), 8);
  std::map<std::string, std::string> model;
  std::string prev;
  for (int i = 0; i < 300; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "%08llu",
             static_cast<unsigned long long>(rnd.Uniform(1000000)));
    if (model.count(key)) continue;
    model[key] = std::to_string(i);
  }
  for (const auto& [key, value] : model) {
    builder.Add(key, value);
  }
  Block block(builder.Finish().ToString());
  auto iter = block.NewIterator(BytewiseComparator());

  for (int probe = 0; probe < 500; ++probe) {
    char target[32];
    snprintf(target, sizeof(target), "%08llu",
             static_cast<unsigned long long>(rnd.Uniform(1000000)));
    iter->Seek(target);
    auto expect = model.lower_bound(target);
    if (expect == model.end()) {
      EXPECT_FALSE(iter->Valid());
    } else {
      ASSERT_TRUE(iter->Valid());
      EXPECT_EQ(expect->first, iter->key().ToString());
      EXPECT_EQ(expect->second, iter->value().ToString());
    }
  }
}

TEST(BlockTest, OverflowingEntryHeaderReportsCorruption) {
  // Fuzzer-derived regression (fuzz_block): an entry header encoding
  // non_shared=0xffffffff with value_length=1 wrapped the old 32-bit bounds
  // check (0xffffffff + 1 == 0), letting DecodeEntry approve a ~4 GiB
  // over-read. The widened check must reject it as a bad entry instead.
  std::string contents;
  contents.push_back('\x00');  // shared = 0
  contents.append("\xff\xff\xff\xff\x0f", 5);  // non_shared = 0xffffffff
  contents.push_back('\x01');  // value_length = 1
  contents.push_back('k');  // Far less payload than claimed.
  PutFixed32(&contents, 0);  // restart[0]
  PutFixed32(&contents, 1);  // num_restarts
  Block block(std::move(contents));

  auto iter = block.NewIterator(BytewiseComparator());
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
  EXPECT_TRUE(iter->status().IsCorruption());
  iter->Seek("k");
  EXPECT_FALSE(iter->Valid());
  EXPECT_TRUE(iter->status().IsCorruption());
}

// ----------------------------------------------------------- BlockHandle ----

TEST(FormatTest, BlockHandleRoundTrip) {
  BlockHandle handle;
  handle.set_offset(123456789);
  handle.set_size(987654);
  std::string encoded;
  handle.EncodeTo(&encoded);
  BlockHandle decoded;
  Slice input(encoded);
  ASSERT_TRUE(decoded.DecodeFrom(&input).ok());
  EXPECT_EQ(123456789u, decoded.offset());
  EXPECT_EQ(987654u, decoded.size());
}

TEST(FormatTest, FooterRoundTrip) {
  Footer footer;
  BlockHandle meta, index;
  meta.set_offset(100);
  meta.set_size(50);
  index.set_offset(200);
  index.set_size(60);
  footer.set_metaindex_handle(meta);
  footer.set_index_handle(index);
  std::string encoded;
  footer.EncodeTo(&encoded);
  EXPECT_EQ(Footer::kEncodedLength, encoded.size());

  Footer decoded;
  Slice input(encoded);
  ASSERT_TRUE(decoded.DecodeFrom(&input).ok());
  EXPECT_EQ(100u, decoded.metaindex_handle().offset());
  EXPECT_EQ(60u, decoded.index_handle().size());
}

TEST(FormatTest, FooterRejectsBadMagic) {
  std::string encoded(Footer::kEncodedLength, '\x07');
  Footer footer;
  Slice input(encoded);
  EXPECT_TRUE(footer.DecodeFrom(&input).IsCorruption());
}

// ---------------------------------------------------------------- Table ----

class TableTest : public ::testing::Test {
 protected:
  TableTest() : icmp_(BytewiseComparator()) {}

  // Builds a table from `entries` (user_key -> value), all at seq 1..n.
  void BuildTable(const std::map<std::string, std::string>& entries,
                  std::shared_ptr<const FilterPolicy> filter_policy = nullptr,
                  LruCache* cache = nullptr) {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_.NewWritableFile("/t.sst", &file).ok());
    TableBuilderOptions topt;
    topt.comparator = &icmp_;
    topt.filter_policy = filter_policy;
    topt.block_size = 256;  // Small blocks exercise the index.
    topt.index_type = index_type_;
    topt.learned_index_epsilon = epsilon_;
    TableBuilder builder(topt, file.get());
    SequenceNumber seq = 1;
    for (const auto& [key, value] : entries) {
      std::string ikey;
      AppendInternalKey(&ikey, ParsedInternalKey(key, seq++, kTypeValue));
      builder.Add(ikey, value);
    }
    ASSERT_TRUE(builder.Finish().ok()) << builder.status().ToString();
    ASSERT_TRUE(file->Close().ok());

    uint64_t size;
    ASSERT_TRUE(env_.GetFileSize("/t.sst", &size).ok());
    std::unique_ptr<RandomAccessFile> read_file;
    ASSERT_TRUE(env_.NewRandomAccessFile("/t.sst", &read_file).ok());
    TableReaderOptions ropt;
    ropt.comparator = &icmp_;
    ropt.filter_policy = filter_policy;
    ropt.block_cache = cache;
    ropt.statistics = &stats_;
    ropt.verify_checksums = true;
    ASSERT_TRUE(TableReader::Open(ropt, std::move(read_file), size, 1,
                                  &reader_)
                    .ok());
  }

  // Point lookup through the reader.
  bool Lookup(const std::string& user_key, std::string* value) {
    std::string ikey;
    AppendInternalKey(
        &ikey, ParsedInternalKey(user_key, kMaxSequenceNumber,
                                 kValueTypeForSeek));
    bool found = false;
    std::string fkey;
    Status s = reader_->InternalGet(ReadOptions(), ikey, &found, &fkey, value);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return found;
  }

  MemEnv env_;
  InternalKeyComparator icmp_;
  std::unique_ptr<TableReader> reader_;
  Statistics stats_;
  IndexType index_type_ = IndexType::kBinarySearchFence;
  uint32_t epsilon_ = 8;
};

TEST_F(TableTest, BuildAndGet) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 1000; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "key%06d", i);
    entries[key] = "value" + std::to_string(i);
  }
  BuildTable(entries);

  std::string value;
  EXPECT_TRUE(Lookup("key000000", &value));
  EXPECT_EQ("value0", value);
  EXPECT_TRUE(Lookup("key000999", &value));
  EXPECT_EQ("value999", value);
  EXPECT_TRUE(Lookup("key000500", &value));
  EXPECT_EQ("value500", value);
  EXPECT_FALSE(Lookup("nonexistent", &value));
  EXPECT_FALSE(Lookup("key001000", &value));
}

TEST_F(TableTest, FullScanMatchesModel) {
  std::map<std::string, std::string> entries;
  Random rnd(7);
  for (int i = 0; i < 2000; ++i) {
    entries["k" + std::to_string(rnd.Uniform(100000))] =
        std::string(rnd.Uniform(64) + 1, 'v');
  }
  BuildTable(entries);

  auto iter = reader_->NewIterator(ReadOptions());
  iter->SeekToFirst();
  for (const auto& [key, value] : entries) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(key, ExtractUserKey(iter->key()).ToString());
    EXPECT_EQ(value, iter->value().ToString());
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());
  EXPECT_TRUE(iter->status().ok());
}

TEST_F(TableTest, IteratorSeek) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 100; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "k%04d", i * 10);
    entries[key] = std::to_string(i);
  }
  BuildTable(entries);

  auto iter = reader_->NewIterator(ReadOptions());
  std::string target;
  AppendInternalKey(&target, ParsedInternalKey("k0005", kMaxSequenceNumber,
                                               kValueTypeForSeek));
  iter->Seek(target);
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("k0010", ExtractUserKey(iter->key()).ToString());
}

TEST_F(TableTest, PropertiesPersisted) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 321; ++i) {
    entries["key" + std::to_string(i)] = "v";
  }
  BuildTable(entries);
  EXPECT_EQ(321u, reader_->properties().num_entries);
  EXPECT_EQ(0u, reader_->properties().num_tombstones);
  EXPECT_GT(reader_->properties().num_data_blocks, 1u);
  EXPECT_GT(reader_->properties().raw_key_bytes, 0u);
}

TEST_F(TableTest, TombstonesCountedInProperties) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_.NewWritableFile("/t.sst", &file).ok());
  TableBuilderOptions topt;
  topt.comparator = &icmp_;
  TableBuilder builder(topt, file.get());
  std::string ikey;
  AppendInternalKey(&ikey, ParsedInternalKey("a", 1, kTypeValue));
  builder.Add(ikey, "v");
  ikey.clear();
  AppendInternalKey(&ikey, ParsedInternalKey("b", 2, kTypeDeletion));
  builder.Add(ikey, "");
  ikey.clear();
  AppendInternalKey(&ikey, ParsedInternalKey("c", 3, kTypeSingleDeletion));
  builder.Add(ikey, "");
  ASSERT_TRUE(builder.Finish().ok());
  EXPECT_EQ(3u, builder.properties().num_entries);
  EXPECT_EQ(2u, builder.properties().num_tombstones);
}

TEST_F(TableTest, FilterSkipsAbsentKeys) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 1000; ++i) {
    entries["present" + std::to_string(i)] = "v";
  }
  BuildTable(entries, NewBloomFilterPolicy(10.0));

  // Present keys can never be ruled out.
  for (int i = 0; i < 1000; i += 97) {
    EXPECT_FALSE(
        reader_->KeyDefinitelyAbsent("present" + std::to_string(i)));
  }
  // Most absent keys are ruled out without touching data blocks.
  int ruled_out = 0;
  for (int i = 0; i < 1000; ++i) {
    if (reader_->KeyDefinitelyAbsent("absent" + std::to_string(i))) {
      ++ruled_out;
    }
  }
  EXPECT_GT(ruled_out, 950);
}

TEST_F(TableTest, BlockCachePopulatedAndHit) {
  LruCache cache(1 << 20, 1);
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 500; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "key%06d", i);
    entries[key] = "value";
  }
  BuildTable(entries, nullptr, &cache);

  std::string value;
  EXPECT_TRUE(Lookup("key000123", &value));
  CacheStats stats1 = cache.GetStats();
  EXPECT_GE(stats1.inserts, 1u);

  // Same block again: served from cache.
  EXPECT_TRUE(Lookup("key000123", &value));
  CacheStats stats2 = cache.GetStats();
  EXPECT_GT(stats2.hits, stats1.hits);
}

TEST_F(TableTest, WarmCacheLoadsAllDataBlocks) {
  LruCache cache(4 << 20, 1);
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 2000; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "key%06d", i);
    entries[key] = "value";
  }
  BuildTable(entries, nullptr, &cache);
  reader_->WarmCache();
  EXPECT_GE(cache.GetStats().inserts, reader_->properties().num_data_blocks);
}

TEST_F(TableTest, CorruptBlockDetectedWithChecksums) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 200; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "key%06d", i);
    entries[key] = "value" + std::to_string(i);
  }
  BuildTable(entries);

  // Flip a byte early in the file (inside the first data block).
  std::string contents;
  ASSERT_TRUE(ReadFileToString(&env_, "/t.sst", &contents).ok());
  contents[10] ^= 0x1;
  ASSERT_TRUE(WriteStringToFile(&env_, contents, "/t.sst").ok());

  uint64_t size;
  ASSERT_TRUE(env_.GetFileSize("/t.sst", &size).ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env_.NewRandomAccessFile("/t.sst", &file).ok());
  TableReaderOptions ropt;
  ropt.comparator = &icmp_;
  ropt.verify_checksums = true;
  std::unique_ptr<TableReader> reader;
  ASSERT_TRUE(TableReader::Open(ropt, std::move(file), size, 2, &reader).ok());

  std::string ikey;
  AppendInternalKey(&ikey, ParsedInternalKey("key000000", kMaxSequenceNumber,
                                             kValueTypeForSeek));
  bool found;
  std::string fkey, value;
  ReadOptions read_options;
  read_options.verify_checksums = true;
  Status s = reader->InternalGet(read_options, ikey, &found, &fkey, &value);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

// --------------------------------------------------------- Learned index ----

TEST(LearnedIndexTest, DigestTransformIsMonotone) {
  Random rnd(301);
  std::vector<std::string> keys;
  for (int i = 0; i < 2000; ++i) {
    std::string k;
    size_t len = rnd.Uniform(24) + 1;
    for (size_t j = 0; j < len; ++j) {
      k.push_back(static_cast<char>(rnd.Uniform(256)));
    }
    keys.push_back(k);
  }
  std::sort(keys.begin(), keys.end());
  for (size_t i = 1; i < keys.size(); ++i) {
    EXPECT_LE(LearnedKeyDigest(keys[i - 1], 0), LearnedKeyDigest(keys[i], 0));
  }
}

TEST(LearnedIndexTest, ModelRoundTrip) {
  LearnedIndexBuilder builder(4);
  char key[32];
  uint64_t offset = 0;
  for (int i = 0; i < 500; ++i) {
    snprintf(key, sizeof(key), "user%08d", i * 7);
    builder.AddBlock(key, offset);
    offset += 100 + static_cast<uint64_t>(i % 13);
  }
  std::string encoded;
  uint64_t segments = 0;
  ASSERT_TRUE(builder.Finish(offset, &encoded, &segments));
  EXPECT_GE(segments, 1u);

  LearnedIndexModel model;
  ASSERT_TRUE(LearnedIndexModel::DecodeFrom(encoded, &model).ok());
  EXPECT_EQ(4u, model.epsilon);
  EXPECT_EQ(500u, model.num_blocks);
  EXPECT_EQ(501u, model.offsets.size());
  EXPECT_EQ(500u, model.digests.size());
  EXPECT_EQ(segments, model.segments.size());
  EXPECT_EQ(offset, model.offsets.back());

  // Re-encoding the decoded model reproduces the bytes exactly.
  std::string reencoded;
  model.EncodeTo(&reencoded);
  EXPECT_EQ(encoded, reencoded);
}

TEST(LearnedIndexTest, PredictionsWithinEpsilon) {
  const uint32_t eps = 8;
  LearnedIndexBuilder builder(eps);
  Random rnd(17);
  uint64_t offset = 0;
  std::vector<std::string> fences;
  std::string k;
  for (int i = 0; i < 1000; ++i) {
    // Uneven key spacing so the fit needs several segments.
    k.clear();
    uint64_t v = static_cast<uint64_t>(i) * 1000 + rnd.Uniform(900);
    if (i > 400) {
      v += 4000000;  // A distribution break.
    }
    char buf[32];
    snprintf(buf, sizeof(buf), "%012llu", static_cast<unsigned long long>(v));
    fences.emplace_back(buf);
    builder.AddBlock(fences.back(), offset);
    offset += 200;
  }
  std::string encoded;
  uint64_t segments = 0;
  ASSERT_TRUE(builder.Finish(offset, &encoded, &segments));
  LearnedIndexModel model;
  ASSERT_TRUE(LearnedIndexModel::DecodeFrom(encoded, &model).ok());

  for (size_t i = 0; i < fences.size(); ++i) {
    uint64_t x = model.QueryDigest(fences[i]);
    if ((i > 0 && model.digests[i] == model.digests[i - 1]) ||
        (i + 1 < model.digests.size() &&
         model.digests[i] == model.digests[i + 1])) {
      continue;  // Tied digests are fence-fallback territory, not the model's.
    }
    uint64_t pred = model.PredictBlock(x);
    uint64_t lo = pred > eps ? pred - eps : 0;
    EXPECT_GE(i, lo) << "block " << i;
    EXPECT_LE(i, pred + eps) << "block " << i;
  }
}

TEST(LearnedIndexTest, BuilderDeclinesDefeatedKeyspace) {
  // Adjacent fences share their first 8 post-prefix bytes almost everywhere:
  // the digest transform cannot discriminate, so the builder must decline.
  LearnedIndexBuilder builder(8);
  char key[40];
  for (int i = 0; i < 100; ++i) {
    snprintf(key, sizeof(key), "%c00000000%04d", i < 50 ? 'a' : 'b', i);
    builder.AddBlock(key, static_cast<uint64_t>(i) * 100);
  }
  std::string encoded;
  uint64_t segments = 0;
  EXPECT_FALSE(builder.Finish(100 * 100, &encoded, &segments));
  EXPECT_TRUE(encoded.empty());
}

TEST(LearnedIndexTest, DecodeRejectsCorruption) {
  LearnedIndexBuilder builder(8);
  char key[32];
  for (int i = 0; i < 64; ++i) {
    snprintf(key, sizeof(key), "key%06d", i * 11);
    builder.AddBlock(key, static_cast<uint64_t>(i) * 300);
  }
  std::string good;
  uint64_t segments = 0;
  ASSERT_TRUE(builder.Finish(64 * 300, &good, &segments));
  LearnedIndexModel model;
  ASSERT_TRUE(LearnedIndexModel::DecodeFrom(good, &model).ok());

  // Every truncation fails cleanly.
  for (size_t len = 0; len < good.size(); ++len) {
    LearnedIndexModel m;
    Status s = LearnedIndexModel::DecodeFrom(Slice(good.data(), len), &m);
    EXPECT_TRUE(s.IsCorruption()) << "length " << len;
  }
  // Trailing garbage is rejected (exact-length segment region).
  {
    std::string padded = good + "x";
    LearnedIndexModel m;
    EXPECT_TRUE(LearnedIndexModel::DecodeFrom(padded, &m).IsCorruption());
  }
  // Random single-byte flips either fail or decode into a *valid* model —
  // never crash, never over-read (the fuzz harness hammers this further).
  Random rnd(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = good;
    mutated[rnd.Uniform(static_cast<int>(mutated.size()))] ^=
        static_cast<char>(1 + rnd.Uniform(255));
    LearnedIndexModel m;
    Status s = LearnedIndexModel::DecodeFrom(mutated, &m);
    if (s.ok()) {
      for (size_t i = 1; i < m.digests.size(); ++i) {
        ASSERT_LE(m.digests[i - 1], m.digests[i]);
      }
      for (const auto& seg : m.segments) {
        ASSERT_TRUE(std::isfinite(seg.slope));
        ASSERT_TRUE(std::isfinite(seg.intercept));
      }
    }
  }
}

TEST(TablePropertiesTest, IndexFieldsRoundTrip) {
  TableProperties props;
  props.num_entries = 1000;
  props.num_data_blocks = 40;
  props.index_type = 1;
  props.learned_index_epsilon = 16;
  props.learned_index_segments = 7;
  props.learned_index_bytes = 1234;
  props.fence_index_bytes = 5678;
  props.learned_index_fallback = 0;
  std::string encoded;
  props.EncodeTo(&encoded);

  TableProperties decoded;
  ASSERT_TRUE(decoded.DecodeFrom(encoded).ok());
  EXPECT_EQ(1u, decoded.index_type);
  EXPECT_EQ(16u, decoded.learned_index_epsilon);
  EXPECT_EQ(7u, decoded.learned_index_segments);
  EXPECT_EQ(1234u, decoded.learned_index_bytes);
  EXPECT_EQ(5678u, decoded.fence_index_bytes);
  EXPECT_EQ(0u, decoded.learned_index_fallback);

  // Pre-index-era properties (7 fields) still decode, with zero defaults.
  std::string old_format;
  PutVarint64(&old_format, 1000);  // num_entries
  for (int i = 0; i < 6; ++i) {
    PutVarint64(&old_format, 0);
  }
  TableProperties old_decoded;
  ASSERT_TRUE(old_decoded.DecodeFrom(old_format).ok());
  EXPECT_EQ(1000u, old_decoded.num_entries);
  EXPECT_EQ(0u, old_decoded.index_type);

  // Trailing garbage after the full field set is corruption.
  std::string padded = encoded + "zz";
  TableProperties bad;
  EXPECT_TRUE(bad.DecodeFrom(padded).IsCorruption());
}

TEST_F(TableTest, LearnedBuildAndGet) {
  index_type_ = IndexType::kLearnedPLR;
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 1000; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "key%06d", i);
    entries[key] = "value" + std::to_string(i);
  }
  BuildTable(entries);

  EXPECT_EQ(IndexType::kLearnedPLR, reader_->index_type());
  const TableProperties& props = reader_->properties();
  EXPECT_EQ(1u, props.index_type);
  EXPECT_EQ(8u, props.learned_index_epsilon);
  EXPECT_GE(props.learned_index_segments, 1u);
  EXPECT_GT(props.learned_index_bytes, 0u);
  EXPECT_GT(props.fence_index_bytes, 0u);
  EXPECT_EQ(0u, props.learned_index_fallback);

  std::string value;
  EXPECT_TRUE(Lookup("key000000", &value));
  EXPECT_EQ("value0", value);
  EXPECT_TRUE(Lookup("key000999", &value));
  EXPECT_EQ("value999", value);
  EXPECT_FALSE(Lookup("nonexistent", &value));
  EXPECT_FALSE(Lookup("key001000", &value));
  EXPECT_GT(stats_.learned_index_hits.load(), 0u);
}

TEST_F(TableTest, LearnedFullScanMatchesModel) {
  index_type_ = IndexType::kLearnedPLR;
  std::map<std::string, std::string> entries;
  Random rnd(7);
  for (int i = 0; i < 2000; ++i) {
    entries["k" + std::to_string(rnd.Uniform(100000))] =
        std::string(rnd.Uniform(64) + 1, 'v');
  }
  BuildTable(entries);
  EXPECT_EQ(IndexType::kLearnedPLR, reader_->index_type());

  auto iter = reader_->NewIterator(ReadOptions());
  iter->SeekToFirst();
  for (const auto& [key, value] : entries) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(key, ExtractUserKey(iter->key()).ToString());
    EXPECT_EQ(value, iter->value().ToString());
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());
  EXPECT_TRUE(iter->status().ok());
}

TEST_F(TableTest, LearnedMatchesFenceRandomized) {
  // The equivalence oracle: identical tables built under both index types
  // must answer every Get and Seek identically.
  Random rnd(42);
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 3000; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "u%010u", static_cast<unsigned>(rnd.Uniform(1u << 30)));
    entries[key] = std::to_string(i);
  }

  index_type_ = IndexType::kBinarySearchFence;
  BuildTable(entries);
  std::unique_ptr<TableReader> fence_reader = std::move(reader_);

  index_type_ = IndexType::kLearnedPLR;
  epsilon_ = 4;
  BuildTable(entries);
  ASSERT_EQ(IndexType::kLearnedPLR, reader_->index_type());

  auto lookup = [&](TableReader* reader, const std::string& user_key,
                    bool* found, std::string* value) {
    std::string ikey;
    AppendInternalKey(&ikey, ParsedInternalKey(user_key, kMaxSequenceNumber,
                                               kValueTypeForSeek));
    std::string fkey;
    ASSERT_TRUE(
        reader->InternalGet(ReadOptions(), ikey, found, &fkey, value).ok());
  };

  for (int trial = 0; trial < 2000; ++trial) {
    char key[32];
    snprintf(key, sizeof(key), "u%010u", static_cast<unsigned>(rnd.Uniform(1u << 30)));
    bool f1 = false, f2 = false;
    std::string v1, v2;
    lookup(fence_reader.get(), key, &f1, &v1);
    lookup(reader_.get(), key, &f2, &v2);
    ASSERT_EQ(f1, f2) << key;
    if (f1) {
      ASSERT_EQ(v1, v2) << key;
    }
  }

  // Seeks agree too.
  auto fence_iter = fence_reader->NewIterator(ReadOptions());
  auto learned_iter = reader_->NewIterator(ReadOptions());
  for (int trial = 0; trial < 500; ++trial) {
    char key[32];
    snprintf(key, sizeof(key), "u%010u", static_cast<unsigned>(rnd.Uniform(1u << 30)));
    std::string target;
    AppendInternalKey(&target, ParsedInternalKey(key, kMaxSequenceNumber,
                                                 kValueTypeForSeek));
    fence_iter->Seek(target);
    learned_iter->Seek(target);
    ASSERT_EQ(fence_iter->Valid(), learned_iter->Valid()) << key;
    if (fence_iter->Valid()) {
      ASSERT_EQ(fence_iter->key().ToString(), learned_iter->key().ToString());
      ASSERT_EQ(fence_iter->value().ToString(),
                learned_iter->value().ToString());
    }
  }
}

TEST_F(TableTest, LearnedDigestTiesFallBackToFences) {
  index_type_ = IndexType::kLearnedPLR;
  epsilon_ = 2;
  std::map<std::string, std::string> entries;
  char key[40];
  // Most keys vary within the digest window...
  for (int i = 0; i < 900; ++i) {
    snprintf(key, sizeof(key), "k%06d", i);
    entries[key] = "plain" + std::to_string(i);
  }
  // ...but one cluster shares its first 8 post-prefix bytes entirely, so
  // every lookup into it lands on tied digests and must take the fence
  // fallback.
  for (int i = 0; i < 300; ++i) {
    snprintf(key, sizeof(key), "kzzzzzzzz%04d", i);
    entries[key] = "tied" + std::to_string(i);
  }
  BuildTable(entries);
  ASSERT_EQ(IndexType::kLearnedPLR, reader_->index_type())
      << "cluster too heavy: builder declined the model";

  std::string value;
  for (int i = 0; i < 300; ++i) {
    snprintf(key, sizeof(key), "kzzzzzzzz%04d", i);
    ASSERT_TRUE(Lookup(key, &value)) << key;
    ASSERT_EQ("tied" + std::to_string(i), value);
  }
  for (int i = 0; i < 900; i += 7) {
    snprintf(key, sizeof(key), "k%06d", i);
    ASSERT_TRUE(Lookup(key, &value)) << key;
  }
  EXPECT_GT(stats_.learned_index_fallbacks.load(), 0u);
  EXPECT_GT(stats_.learned_index_hits.load(), 0u);
}

TEST_F(TableTest, LearnedDefeatedTableFallsBackPerTable) {
  index_type_ = IndexType::kLearnedPLR;
  std::map<std::string, std::string> entries;
  char key[40];
  // Two flat clusters: nearly every fence digest ties, so the builder
  // declines and the table ships fence pointers only.
  for (int i = 0; i < 500; ++i) {
    snprintf(key, sizeof(key), "%c00000000%04d", i < 250 ? 'a' : 'b', i);
    entries[key] = std::to_string(i);
  }
  BuildTable(entries);

  EXPECT_EQ(IndexType::kBinarySearchFence, reader_->index_type());
  EXPECT_EQ(0u, reader_->properties().index_type);
  EXPECT_EQ(1u, reader_->properties().learned_index_fallback);

  std::string value;
  for (int i = 0; i < 500; i += 11) {
    snprintf(key, sizeof(key), "%c00000000%04d", i < 250 ? 'a' : 'b', i);
    ASSERT_TRUE(Lookup(key, &value)) << key;
    ASSERT_EQ(std::to_string(i), value);
  }
}

TEST_F(TableTest, LearnedIndexPinsFewerBytesThanFences) {
  index_type_ = IndexType::kLearnedPLR;
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 5000; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "key%012d", i * 3);
    entries[key] = "v" + std::to_string(i);
  }
  BuildTable(entries);
  ASSERT_EQ(IndexType::kLearnedPLR, reader_->index_type());

  const TableProperties& props = reader_->properties();
  // The acceptance bar for the bottommost level: >= 2x fewer index bytes.
  EXPECT_LE(props.learned_index_bytes * 2, props.fence_index_bytes)
      << "learned=" << props.learned_index_bytes
      << " fence=" << props.fence_index_bytes;
  // And the reader pins only the model until a fallback happens.
  EXPECT_LT(reader_->IndexMemoryUsage(), props.fence_index_bytes);
}

TEST_F(TableTest, CorruptLearnedBlockFailsOpen) {
  index_type_ = IndexType::kLearnedPLR;
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 500; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "key%06d", i);
    entries[key] = "v";
  }
  BuildTable(entries);
  ASSERT_EQ(IndexType::kLearnedPLR, reader_->index_type());

  // Locate the learned block in the file by re-encoding the model the
  // reader decoded... simpler: flip bytes across the whole file tail (meta
  // region) and require that every resulting open either fails or yields a
  // reader that still answers correctly.
  std::string contents;
  ASSERT_TRUE(ReadFileToString(&env_, "/t.sst", &contents).ok());
  Random rnd(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::string mutated = contents;
    // Mutate within the last quarter (metaindex/learned/properties/index).
    size_t start = mutated.size() - mutated.size() / 4;
    size_t pos = start + rnd.Uniform(static_cast<int>(mutated.size() - start));
    mutated[pos] ^= static_cast<char>(1 + rnd.Uniform(255));
    ASSERT_TRUE(WriteStringToFile(&env_, mutated, "/corrupt.sst").ok());

    uint64_t size;
    ASSERT_TRUE(env_.GetFileSize("/corrupt.sst", &size).ok());
    std::unique_ptr<RandomAccessFile> file;
    ASSERT_TRUE(env_.NewRandomAccessFile("/corrupt.sst", &file).ok());
    TableReaderOptions ropt;
    ropt.comparator = &icmp_;
    ropt.verify_checksums = true;
    std::unique_ptr<TableReader> reader;
    Status s = TableReader::Open(ropt, std::move(file), size, 3, &reader);
    if (!s.ok()) {
      continue;  // Rejected — the expected outcome for meta corruption.
    }
    std::string ikey, fkey, value;
    AppendInternalKey(&ikey, ParsedInternalKey("key000123", kMaxSequenceNumber,
                                               kValueTypeForSeek));
    bool found = false;
    s = reader->InternalGet(ReadOptions(), ikey, &found, &fkey, &value);
    if (s.ok() && found) {
      EXPECT_EQ("v", value);
    }
  }
}

// ------------------------------------------------------- MergingIterator ----

std::unique_ptr<Iterator> BlockIterOver(
    const std::vector<std::pair<std::string, std::string>>& entries,
    std::shared_ptr<Block>* out_block) {
  BlockBuilder builder(BytewiseComparator(), 4);
  for (const auto& [key, value] : entries) {
    builder.Add(key, value);
  }
  *out_block = std::make_shared<Block>(builder.Finish().ToString());
  return (*out_block)->NewIterator(BytewiseComparator());
}

TEST(MergingIteratorTest, MergesSortedStreams) {
  std::shared_ptr<Block> b1, b2, b3;
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(BlockIterOver({{"a", "1"}, {"d", "4"}, {"g", "7"}}, &b1));
  children.push_back(BlockIterOver({{"b", "2"}, {"e", "5"}}, &b2));
  children.push_back(BlockIterOver({{"c", "3"}, {"f", "6"}, {"h", "8"}}, &b3));

  auto merged = NewMergingIterator(BytewiseComparator(), std::move(children));
  merged->SeekToFirst();
  std::string got;
  while (merged->Valid()) {
    got += merged->key().ToString();
    merged->Next();
  }
  EXPECT_EQ("abcdefgh", got);
}

TEST(MergingIteratorTest, TieBreaksByChildOrder) {
  // Children with equal keys must surface the first (newest) child's entry
  // first — the LSM shadowing rule.
  std::shared_ptr<Block> b1, b2;
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(BlockIterOver({{"k", "new"}}, &b1));
  children.push_back(BlockIterOver({{"k", "old"}}, &b2));
  auto merged = NewMergingIterator(BytewiseComparator(), std::move(children));
  merged->SeekToFirst();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ("new", merged->value().ToString());
  merged->Next();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ("old", merged->value().ToString());
}

TEST(MergingIteratorTest, SeekAcrossChildren) {
  std::shared_ptr<Block> b1, b2;
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(BlockIterOver({{"a", "1"}, {"m", "2"}}, &b1));
  children.push_back(BlockIterOver({{"c", "3"}, {"z", "4"}}, &b2));
  auto merged = NewMergingIterator(BytewiseComparator(), std::move(children));
  merged->Seek("b");
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ("c", merged->key().ToString());
  merged->Seek("n");
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ("z", merged->key().ToString());
}

TEST(MergingIteratorTest, EmptyChildrenYieldEmpty) {
  auto merged = NewMergingIterator(BytewiseComparator(), {});
  merged->SeekToFirst();
  EXPECT_FALSE(merged->Valid());
}

}  // namespace
}  // namespace lsmlab
