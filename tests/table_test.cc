#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "db/dbformat.h"
#include "filter/filter_policy.h"
#include "io/counting_env.h"
#include "io/mem_env.h"
#include "table/block.h"
#include "table/block_builder.h"
#include "table/format.h"
#include "table/merging_iterator.h"
#include "table/table_builder.h"
#include "table/table_reader.h"
#include "util/coding.h"
#include "util/random.h"

namespace lsmlab {
namespace {

// ---------------------------------------------------------------- Block ----

TEST(BlockTest, BuildAndIterate) {
  BlockBuilder builder(BytewiseComparator(), 4);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 100; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "key%04d", i);
    std::string value = "value" + std::to_string(i);
    model[key] = value;
    builder.Add(key, value);
  }
  Block block(builder.Finish().ToString());

  auto iter = block.NewIterator(BytewiseComparator());
  iter->SeekToFirst();
  for (const auto& [key, value] : model) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(key, iter->key().ToString());
    EXPECT_EQ(value, iter->value().ToString());
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());
  EXPECT_TRUE(iter->status().ok());
}

TEST(BlockTest, SeekLowerBound) {
  BlockBuilder builder(BytewiseComparator(), 2);
  builder.Add("b", "1");
  builder.Add("d", "2");
  builder.Add("f", "3");
  Block block(builder.Finish().ToString());
  auto iter = block.NewIterator(BytewiseComparator());

  iter->Seek("a");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("b", iter->key().ToString());

  iter->Seek("d");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("d", iter->key().ToString());

  iter->Seek("e");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("f", iter->key().ToString());

  iter->Seek("g");
  EXPECT_FALSE(iter->Valid());
}

TEST(BlockTest, EmptyBlock) {
  BlockBuilder builder(BytewiseComparator(), 16);
  Block block(builder.Finish().ToString());
  auto iter = block.NewIterator(BytewiseComparator());
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
}

TEST(BlockTest, PrefixCompressionShrinksBlock) {
  // Keys sharing long prefixes must compress well vs restart-every-entry.
  auto build_size = [](int restart_interval) {
    BlockBuilder builder(BytewiseComparator(), restart_interval);
    for (int i = 0; i < 500; ++i) {
      char key[64];
      snprintf(key, sizeof(key), "a/very/long/shared/key/prefix/%06d", i);
      builder.Add(key, "v");
    }
    return builder.Finish().size();
  };
  EXPECT_LT(build_size(16), build_size(1) * 2 / 3);
}

TEST(BlockTest, RandomizedSeekMatchesModel) {
  Random rnd(1234);
  BlockBuilder builder(BytewiseComparator(), 8);
  std::map<std::string, std::string> model;
  std::string prev;
  for (int i = 0; i < 300; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "%08llu",
             static_cast<unsigned long long>(rnd.Uniform(1000000)));
    if (model.count(key)) continue;
    model[key] = std::to_string(i);
  }
  for (const auto& [key, value] : model) {
    builder.Add(key, value);
  }
  Block block(builder.Finish().ToString());
  auto iter = block.NewIterator(BytewiseComparator());

  for (int probe = 0; probe < 500; ++probe) {
    char target[32];
    snprintf(target, sizeof(target), "%08llu",
             static_cast<unsigned long long>(rnd.Uniform(1000000)));
    iter->Seek(target);
    auto expect = model.lower_bound(target);
    if (expect == model.end()) {
      EXPECT_FALSE(iter->Valid());
    } else {
      ASSERT_TRUE(iter->Valid());
      EXPECT_EQ(expect->first, iter->key().ToString());
      EXPECT_EQ(expect->second, iter->value().ToString());
    }
  }
}

TEST(BlockTest, OverflowingEntryHeaderReportsCorruption) {
  // Fuzzer-derived regression (fuzz_block): an entry header encoding
  // non_shared=0xffffffff with value_length=1 wrapped the old 32-bit bounds
  // check (0xffffffff + 1 == 0), letting DecodeEntry approve a ~4 GiB
  // over-read. The widened check must reject it as a bad entry instead.
  std::string contents;
  contents.push_back('\x00');  // shared = 0
  contents.append("\xff\xff\xff\xff\x0f", 5);  // non_shared = 0xffffffff
  contents.push_back('\x01');  // value_length = 1
  contents.push_back('k');  // Far less payload than claimed.
  PutFixed32(&contents, 0);  // restart[0]
  PutFixed32(&contents, 1);  // num_restarts
  Block block(std::move(contents));

  auto iter = block.NewIterator(BytewiseComparator());
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
  EXPECT_TRUE(iter->status().IsCorruption());
  iter->Seek("k");
  EXPECT_FALSE(iter->Valid());
  EXPECT_TRUE(iter->status().IsCorruption());
}

// ----------------------------------------------------------- BlockHandle ----

TEST(FormatTest, BlockHandleRoundTrip) {
  BlockHandle handle;
  handle.set_offset(123456789);
  handle.set_size(987654);
  std::string encoded;
  handle.EncodeTo(&encoded);
  BlockHandle decoded;
  Slice input(encoded);
  ASSERT_TRUE(decoded.DecodeFrom(&input).ok());
  EXPECT_EQ(123456789u, decoded.offset());
  EXPECT_EQ(987654u, decoded.size());
}

TEST(FormatTest, FooterRoundTrip) {
  Footer footer;
  BlockHandle meta, index;
  meta.set_offset(100);
  meta.set_size(50);
  index.set_offset(200);
  index.set_size(60);
  footer.set_metaindex_handle(meta);
  footer.set_index_handle(index);
  std::string encoded;
  footer.EncodeTo(&encoded);
  EXPECT_EQ(Footer::kEncodedLength, encoded.size());

  Footer decoded;
  Slice input(encoded);
  ASSERT_TRUE(decoded.DecodeFrom(&input).ok());
  EXPECT_EQ(100u, decoded.metaindex_handle().offset());
  EXPECT_EQ(60u, decoded.index_handle().size());
}

TEST(FormatTest, FooterRejectsBadMagic) {
  std::string encoded(Footer::kEncodedLength, '\x07');
  Footer footer;
  Slice input(encoded);
  EXPECT_TRUE(footer.DecodeFrom(&input).IsCorruption());
}

// ---------------------------------------------------------------- Table ----

class TableTest : public ::testing::Test {
 protected:
  TableTest() : icmp_(BytewiseComparator()) {}

  // Builds a table from `entries` (user_key -> value), all at seq 1..n.
  void BuildTable(const std::map<std::string, std::string>& entries,
                  std::shared_ptr<const FilterPolicy> filter_policy = nullptr,
                  LruCache* cache = nullptr) {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_.NewWritableFile("/t.sst", &file).ok());
    TableBuilderOptions topt;
    topt.comparator = &icmp_;
    topt.filter_policy = filter_policy;
    topt.block_size = 256;  // Small blocks exercise the index.
    TableBuilder builder(topt, file.get());
    SequenceNumber seq = 1;
    for (const auto& [key, value] : entries) {
      std::string ikey;
      AppendInternalKey(&ikey, ParsedInternalKey(key, seq++, kTypeValue));
      builder.Add(ikey, value);
    }
    ASSERT_TRUE(builder.Finish().ok()) << builder.status().ToString();
    ASSERT_TRUE(file->Close().ok());

    uint64_t size;
    ASSERT_TRUE(env_.GetFileSize("/t.sst", &size).ok());
    std::unique_ptr<RandomAccessFile> read_file;
    ASSERT_TRUE(env_.NewRandomAccessFile("/t.sst", &read_file).ok());
    TableReaderOptions ropt;
    ropt.comparator = &icmp_;
    ropt.filter_policy = filter_policy;
    ropt.block_cache = cache;
    ropt.verify_checksums = true;
    ASSERT_TRUE(TableReader::Open(ropt, std::move(read_file), size, 1,
                                  &reader_)
                    .ok());
  }

  // Point lookup through the reader.
  bool Lookup(const std::string& user_key, std::string* value) {
    std::string ikey;
    AppendInternalKey(
        &ikey, ParsedInternalKey(user_key, kMaxSequenceNumber,
                                 kValueTypeForSeek));
    bool found = false;
    std::string fkey;
    Status s = reader_->InternalGet(ReadOptions(), ikey, &found, &fkey, value);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return found;
  }

  MemEnv env_;
  InternalKeyComparator icmp_;
  std::unique_ptr<TableReader> reader_;
};

TEST_F(TableTest, BuildAndGet) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 1000; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "key%06d", i);
    entries[key] = "value" + std::to_string(i);
  }
  BuildTable(entries);

  std::string value;
  EXPECT_TRUE(Lookup("key000000", &value));
  EXPECT_EQ("value0", value);
  EXPECT_TRUE(Lookup("key000999", &value));
  EXPECT_EQ("value999", value);
  EXPECT_TRUE(Lookup("key000500", &value));
  EXPECT_EQ("value500", value);
  EXPECT_FALSE(Lookup("nonexistent", &value));
  EXPECT_FALSE(Lookup("key001000", &value));
}

TEST_F(TableTest, FullScanMatchesModel) {
  std::map<std::string, std::string> entries;
  Random rnd(7);
  for (int i = 0; i < 2000; ++i) {
    entries["k" + std::to_string(rnd.Uniform(100000))] =
        std::string(rnd.Uniform(64) + 1, 'v');
  }
  BuildTable(entries);

  auto iter = reader_->NewIterator(ReadOptions());
  iter->SeekToFirst();
  for (const auto& [key, value] : entries) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(key, ExtractUserKey(iter->key()).ToString());
    EXPECT_EQ(value, iter->value().ToString());
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());
  EXPECT_TRUE(iter->status().ok());
}

TEST_F(TableTest, IteratorSeek) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 100; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "k%04d", i * 10);
    entries[key] = std::to_string(i);
  }
  BuildTable(entries);

  auto iter = reader_->NewIterator(ReadOptions());
  std::string target;
  AppendInternalKey(&target, ParsedInternalKey("k0005", kMaxSequenceNumber,
                                               kValueTypeForSeek));
  iter->Seek(target);
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("k0010", ExtractUserKey(iter->key()).ToString());
}

TEST_F(TableTest, PropertiesPersisted) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 321; ++i) {
    entries["key" + std::to_string(i)] = "v";
  }
  BuildTable(entries);
  EXPECT_EQ(321u, reader_->properties().num_entries);
  EXPECT_EQ(0u, reader_->properties().num_tombstones);
  EXPECT_GT(reader_->properties().num_data_blocks, 1u);
  EXPECT_GT(reader_->properties().raw_key_bytes, 0u);
}

TEST_F(TableTest, TombstonesCountedInProperties) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_.NewWritableFile("/t.sst", &file).ok());
  TableBuilderOptions topt;
  topt.comparator = &icmp_;
  TableBuilder builder(topt, file.get());
  std::string ikey;
  AppendInternalKey(&ikey, ParsedInternalKey("a", 1, kTypeValue));
  builder.Add(ikey, "v");
  ikey.clear();
  AppendInternalKey(&ikey, ParsedInternalKey("b", 2, kTypeDeletion));
  builder.Add(ikey, "");
  ikey.clear();
  AppendInternalKey(&ikey, ParsedInternalKey("c", 3, kTypeSingleDeletion));
  builder.Add(ikey, "");
  ASSERT_TRUE(builder.Finish().ok());
  EXPECT_EQ(3u, builder.properties().num_entries);
  EXPECT_EQ(2u, builder.properties().num_tombstones);
}

TEST_F(TableTest, FilterSkipsAbsentKeys) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 1000; ++i) {
    entries["present" + std::to_string(i)] = "v";
  }
  BuildTable(entries, NewBloomFilterPolicy(10.0));

  // Present keys can never be ruled out.
  for (int i = 0; i < 1000; i += 97) {
    EXPECT_FALSE(
        reader_->KeyDefinitelyAbsent("present" + std::to_string(i)));
  }
  // Most absent keys are ruled out without touching data blocks.
  int ruled_out = 0;
  for (int i = 0; i < 1000; ++i) {
    if (reader_->KeyDefinitelyAbsent("absent" + std::to_string(i))) {
      ++ruled_out;
    }
  }
  EXPECT_GT(ruled_out, 950);
}

TEST_F(TableTest, BlockCachePopulatedAndHit) {
  LruCache cache(1 << 20, 1);
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 500; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "key%06d", i);
    entries[key] = "value";
  }
  BuildTable(entries, nullptr, &cache);

  std::string value;
  EXPECT_TRUE(Lookup("key000123", &value));
  CacheStats stats1 = cache.GetStats();
  EXPECT_GE(stats1.inserts, 1u);

  // Same block again: served from cache.
  EXPECT_TRUE(Lookup("key000123", &value));
  CacheStats stats2 = cache.GetStats();
  EXPECT_GT(stats2.hits, stats1.hits);
}

TEST_F(TableTest, WarmCacheLoadsAllDataBlocks) {
  LruCache cache(4 << 20, 1);
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 2000; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "key%06d", i);
    entries[key] = "value";
  }
  BuildTable(entries, nullptr, &cache);
  reader_->WarmCache();
  EXPECT_GE(cache.GetStats().inserts, reader_->properties().num_data_blocks);
}

TEST_F(TableTest, CorruptBlockDetectedWithChecksums) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 200; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "key%06d", i);
    entries[key] = "value" + std::to_string(i);
  }
  BuildTable(entries);

  // Flip a byte early in the file (inside the first data block).
  std::string contents;
  ASSERT_TRUE(ReadFileToString(&env_, "/t.sst", &contents).ok());
  contents[10] ^= 0x1;
  ASSERT_TRUE(WriteStringToFile(&env_, contents, "/t.sst").ok());

  uint64_t size;
  ASSERT_TRUE(env_.GetFileSize("/t.sst", &size).ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env_.NewRandomAccessFile("/t.sst", &file).ok());
  TableReaderOptions ropt;
  ropt.comparator = &icmp_;
  ropt.verify_checksums = true;
  std::unique_ptr<TableReader> reader;
  ASSERT_TRUE(TableReader::Open(ropt, std::move(file), size, 2, &reader).ok());

  std::string ikey;
  AppendInternalKey(&ikey, ParsedInternalKey("key000000", kMaxSequenceNumber,
                                             kValueTypeForSeek));
  bool found;
  std::string fkey, value;
  ReadOptions read_options;
  read_options.verify_checksums = true;
  Status s = reader->InternalGet(read_options, ikey, &found, &fkey, &value);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

// ------------------------------------------------------- MergingIterator ----

std::unique_ptr<Iterator> BlockIterOver(
    const std::vector<std::pair<std::string, std::string>>& entries,
    std::shared_ptr<Block>* out_block) {
  BlockBuilder builder(BytewiseComparator(), 4);
  for (const auto& [key, value] : entries) {
    builder.Add(key, value);
  }
  *out_block = std::make_shared<Block>(builder.Finish().ToString());
  return (*out_block)->NewIterator(BytewiseComparator());
}

TEST(MergingIteratorTest, MergesSortedStreams) {
  std::shared_ptr<Block> b1, b2, b3;
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(BlockIterOver({{"a", "1"}, {"d", "4"}, {"g", "7"}}, &b1));
  children.push_back(BlockIterOver({{"b", "2"}, {"e", "5"}}, &b2));
  children.push_back(BlockIterOver({{"c", "3"}, {"f", "6"}, {"h", "8"}}, &b3));

  auto merged = NewMergingIterator(BytewiseComparator(), std::move(children));
  merged->SeekToFirst();
  std::string got;
  while (merged->Valid()) {
    got += merged->key().ToString();
    merged->Next();
  }
  EXPECT_EQ("abcdefgh", got);
}

TEST(MergingIteratorTest, TieBreaksByChildOrder) {
  // Children with equal keys must surface the first (newest) child's entry
  // first — the LSM shadowing rule.
  std::shared_ptr<Block> b1, b2;
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(BlockIterOver({{"k", "new"}}, &b1));
  children.push_back(BlockIterOver({{"k", "old"}}, &b2));
  auto merged = NewMergingIterator(BytewiseComparator(), std::move(children));
  merged->SeekToFirst();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ("new", merged->value().ToString());
  merged->Next();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ("old", merged->value().ToString());
}

TEST(MergingIteratorTest, SeekAcrossChildren) {
  std::shared_ptr<Block> b1, b2;
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(BlockIterOver({{"a", "1"}, {"m", "2"}}, &b1));
  children.push_back(BlockIterOver({{"c", "3"}, {"z", "4"}}, &b2));
  auto merged = NewMergingIterator(BytewiseComparator(), std::move(children));
  merged->Seek("b");
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ("c", merged->key().ToString());
  merged->Seek("n");
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ("z", merged->key().ToString());
}

TEST(MergingIteratorTest, EmptyChildrenYieldEmpty) {
  auto merged = NewMergingIterator(BytewiseComparator(), {});
  merged->SeekToFirst();
  EXPECT_FALSE(merged->Valid());
}

}  // namespace
}  // namespace lsmlab
