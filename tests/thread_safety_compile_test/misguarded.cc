// Deliberately violates the locking discipline: total_ is GUARDED_BY(mu_)
// but Add() touches it without holding the mutex. This file must NOT compile
// under clang -Wthread-safety -Werror; run_test.sh fails if it does, which
// proves the analysis is actually live rather than silently disabled.
//
// NOT part of any build target — compiled standalone by run_test.sh.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Add(long delta) {
    total_ += delta;  // BUG: mu_ not held.
  }

  long Total() const {
    lsmlab::MutexLock lock(&mu_);
    return total_;
  }

 private:
  mutable lsmlab::Mutex mu_;
  long total_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Add(1);
  return c.Total() == 1 ? 0 : 1;
}
