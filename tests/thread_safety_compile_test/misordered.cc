// Deliberately inverts the declared lock order: writer_queue_mu_ is
// ACQUIRED_BEFORE(mu_) — the writer-queue protocol from ShardEngine — but
// Commit() takes mu_ first. This file must NOT compile under clang
// -Wthread-safety-beta -Werror (ACQUIRED_BEFORE checking lives behind the
// -beta flag); run_test.sh fails if it does. The runtime twin of this proof
// is tests/lock_rank_test.cc RankInversionAborts.
//
// NOT part of any build target — compiled standalone by run_test.sh.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Engine {
 public:
  void Commit() {
    mu_.Lock();
    writer_queue_mu_.Lock();  // BUG: declared order is queue before mu_.
    pending_ = applied_;
    writer_queue_mu_.Unlock();
    mu_.Unlock();
  }

 private:
  lsmlab::Mutex mu_;
  lsmlab::Mutex writer_queue_mu_ ACQUIRED_BEFORE(mu_);
  long applied_ GUARDED_BY(mu_) = 0;
  long pending_ GUARDED_BY(writer_queue_mu_) = 0;
};

}  // namespace

int main() {
  Engine e;
  e.Commit();
  return 0;
}
