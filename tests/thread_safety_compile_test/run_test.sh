#!/bin/sh
# Negative-compilation proof that the thread-safety analysis is live.
#
#   run_test.sh <cxx> <test_src_dir> <include_dir>
#
# Under clang: well_guarded.cc must compile and misguarded.cc must be
# rejected by -Wthread-safety -Werror, with the diagnostic coming from the
# analysis itself (not some unrelated error). Under a compiler without the
# analysis (gcc), exits 77 so ctest reports SKIP via SKIP_RETURN_CODE.
set -u

CXX="$1"
SRC_DIR="$2"
INC_DIR="$3"

if ! "$CXX" --version 2>/dev/null | grep -qi clang; then
  echo "SKIP: $CXX is not clang; thread-safety analysis unavailable"
  exit 77
fi

FLAGS="-std=c++20 -fsyntax-only -I$INC_DIR -Wthread-safety -Werror"

if ! "$CXX" $FLAGS "$SRC_DIR/well_guarded.cc"; then
  echo "FAIL: well_guarded.cc did not compile under -Wthread-safety -Werror"
  exit 1
fi

err=$("$CXX" $FLAGS "$SRC_DIR/misguarded.cc" 2>&1)
if [ $? -eq 0 ]; then
  echo "FAIL: misguarded.cc compiled — the analysis is not firing"
  exit 1
fi
case "$err" in
  *thread-safety*)
    echo "PASS: -Wthread-safety rejected the misguarded access"
    ;;
  *)
    echo "FAIL: misguarded.cc failed to compile for the wrong reason:"
    echo "$err"
    exit 1
    ;;
esac

# ACQUIRED_BEFORE ordering checks live behind -Wthread-safety-beta: the
# misordered twin (mu_ taken before writer_queue_mu_, inverting the declared
# order) must be rejected there. Its runtime twin is lock_rank_test's
# RankInversionAborts.
BETA_FLAGS="$FLAGS -Wthread-safety-beta"

err=$("$CXX" $BETA_FLAGS "$SRC_DIR/misordered.cc" 2>&1)
if [ $? -eq 0 ]; then
  echo "FAIL: misordered.cc compiled — ACQUIRED_BEFORE checking is not firing"
  exit 1
fi
case "$err" in
  *thread-safety*)
    echo "PASS: -Wthread-safety-beta rejected the misordered acquisition"
    exit 0
    ;;
  *)
    echo "FAIL: misordered.cc failed to compile for the wrong reason:"
    echo "$err"
    exit 1
    ;;
esac
