// The correctly guarded twin of misguarded.cc: identical shape, but Add()
// holds mu_ as the annotation demands. Must compile cleanly under clang
// -Wthread-safety -Werror — if it does not, the harness (or the annotation
// macros) are broken, not the code under test.
//
// NOT part of any build target — compiled standalone by run_test.sh.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Add(long delta) {
    lsmlab::MutexLock lock(&mu_);
    total_ += delta;
  }

  long Total() const {
    lsmlab::MutexLock lock(&mu_);
    return total_;
  }

 private:
  mutable lsmlab::Mutex mu_;
  long total_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Add(1);
  return c.Total() == 1 ? 0 : 1;
}
