#include <gtest/gtest.h>

#include <cmath>

#include "tuning/cost_model.h"
#include "tuning/monkey.h"
#include "tuning/navigator.h"

namespace lsmlab {
namespace {

// ------------------------------------------------------------------ Monkey --

TEST(MonkeyTest, ShallowLevelsGetMoreBits) {
  auto bits = MonkeyBitsPerLevel(10.0, 5, 10);
  ASSERT_EQ(5u, bits.size());
  for (size_t i = 1; i < bits.size(); ++i) {
    EXPECT_GE(bits[i - 1], bits[i]) << "level " << i;
  }
  EXPECT_GT(bits[0], 10.0);  // Shallower than average.
}

TEST(MonkeyTest, BudgetIsRespected) {
  const int kLevels = 5;
  const int kT = 10;
  const double kAvg = 8.0;
  auto bits = MonkeyBitsPerLevel(kAvg, kLevels, kT);

  // Weighted average (weights ~ T^i) must match the budget.
  double total_w = 0, total_bits = 0, w = 1;
  for (int i = 0; i < kLevels; ++i) {
    total_bits += w * bits[static_cast<size_t>(i)];
    total_w += w;
    w *= kT;
  }
  EXPECT_NEAR(total_bits / total_w, kAvg, 0.05);
}

TEST(MonkeyTest, MonkeyBeatsUniformOnExpectedFalsePositives) {
  const int kLevels = 6;
  const int kT = 10;
  const double kAvg = 8.0;
  auto monkey = MonkeyBitsPerLevel(kAvg, kLevels, kT);
  std::vector<double> uniform(kLevels, kAvg);
  // The whole point of Monkey (§2.1.3): fewer expected superfluous I/Os for
  // the same filter memory.
  EXPECT_LT(ExpectedFalsePositiveIos(monkey),
            ExpectedFalsePositiveIos(uniform));
}

TEST(MonkeyTest, ZeroBudgetDisablesFilters) {
  auto bits = MonkeyBitsPerLevel(0.0, 4, 10);
  for (double b : bits) {
    EXPECT_EQ(0.0, b);
  }
  EXPECT_DOUBLE_EQ(1.0, BloomFpr(0.0));
}

TEST(MonkeyTest, BloomFprMatchesTheory) {
  // 10 bits/key -> ~0.82% FPR (exp(-10 * ln2^2)).
  EXPECT_NEAR(BloomFpr(10.0), 0.0082, 0.001);
  EXPECT_NEAR(BloomFpr(5.0), 0.0905, 0.005);
}

// --------------------------------------------------------------- CostModel --

DataSpec TestData() {
  DataSpec data;
  data.num_entries = 100'000'000;
  data.entry_bytes = 128;
  return data;
}

TEST(CostModelTest, TieringWritesCheaperLevelingReadsCheaper) {
  DataSpec data = TestData();
  LsmDesign leveling;
  leveling.layout = DataLayout::kLeveling;
  LsmDesign tiering = leveling;
  tiering.layout = DataLayout::kTiering;

  CostModel lm(leveling, data), tm(tiering, data);
  // The foundational tradeoff of §2.2.2.
  EXPECT_LT(tm.WriteCost(), lm.WriteCost());
  EXPECT_LT(lm.ZeroResultLookupCost(), tm.ZeroResultLookupCost());
  EXPECT_LT(lm.ShortScanCost(), tm.ShortScanCost());
  EXPECT_LT(lm.SpaceAmplification(), tm.SpaceAmplification());
}

TEST(CostModelTest, LazyLevelingBetweenExtremes) {
  DataSpec data = TestData();
  LsmDesign l, t, lazy;
  l.layout = DataLayout::kLeveling;
  t.layout = DataLayout::kTiering;
  lazy.layout = DataLayout::kLazyLeveling;
  CostModel lm(l, data), tm(t, data), zm(lazy, data);
  // Dostoevsky: writes like tiering (cheaper than leveling), point reads
  // close to leveling (much better than tiering).
  EXPECT_LT(zm.WriteCost(), lm.WriteCost());
  EXPECT_LT(zm.ZeroResultLookupCost(), tm.ZeroResultLookupCost());
}

TEST(CostModelTest, LargerSizeRatioFlattensTree) {
  DataSpec data = TestData();
  LsmDesign t4, t16;
  t4.size_ratio = 4;
  t16.size_ratio = 16;
  CostModel m4(t4, data), m16(t16, data);
  EXPECT_GT(m4.NumLevels(), m16.NumLevels());
  // Leveling: higher T -> costlier writes, cheaper zero-result reads.
  EXPECT_GT(m16.WriteCost(), m4.WriteCost());
  EXPECT_LE(m16.ZeroResultLookupCost(), m4.ZeroResultLookupCost());
}

TEST(CostModelTest, FiltersCutZeroResultCost) {
  DataSpec data = TestData();
  LsmDesign with, without;
  with.filter_bits_per_key = 10;
  without.filter_bits_per_key = 0;
  CostModel mw(with, data), mo(without, data);
  EXPECT_LT(mw.ZeroResultLookupCost(), mo.ZeroResultLookupCost() / 10);
  // Filters do not change write cost.
  EXPECT_DOUBLE_EQ(mw.WriteCost(), mo.WriteCost());
}

TEST(CostModelTest, MonkeyReducesZeroResultCost) {
  DataSpec data = TestData();
  LsmDesign uniform, monkey;
  uniform.filter_bits_per_key = monkey.filter_bits_per_key = 8;
  monkey.monkey_allocation = true;
  CostModel mu(uniform, data), mm(monkey, data);
  EXPECT_LT(mm.ZeroResultLookupCost(), mu.ZeroResultLookupCost());
}

TEST(CostModelTest, BiggerBufferFewerLevels) {
  DataSpec data = TestData();
  LsmDesign small, big;
  small.buffer_bytes = 1 << 20;
  big.buffer_bytes = 256 << 20;
  CostModel ms(small, data), mb(big, data);
  EXPECT_GT(ms.NumLevels(), mb.NumLevels());
  EXPECT_GT(ms.WriteCost(), mb.WriteCost());
}

// --------------------------------------------------------------- Navigator --

TEST(NavigatorTest, WriteHeavyPrefersTiering) {
  DataSpec data = TestData();
  DesignSpaceSpec space;
  WorkloadMix write_heavy(0.95, 0.02, 0.02, 0.01);
  LsmDesign best = NominalTuning(space, data, write_heavy);
  EXPECT_TRUE(best.layout == DataLayout::kTiering ||
              best.layout == DataLayout::kLazyLeveling)
      << best.Label();
}

TEST(NavigatorTest, ReadHeavyPrefersLeveling) {
  DataSpec data = TestData();
  DesignSpaceSpec space;
  WorkloadMix read_heavy(0.02, 0.58, 0.2, 0.2);
  LsmDesign best = NominalTuning(space, data, read_heavy);
  EXPECT_TRUE(best.layout == DataLayout::kLeveling ||
              best.layout == DataLayout::kLazyLeveling)
      << best.Label();
}

TEST(NavigatorTest, EnumerationIsSortedByCost) {
  DataSpec data = TestData();
  DesignSpaceSpec space;
  space.max_size_ratio = 6;
  auto designs = EnumerateDesigns(space, data, WorkloadMix());
  ASSERT_GT(designs.size(), 10u);
  for (size_t i = 1; i < designs.size(); ++i) {
    EXPECT_LE(designs[i - 1].cost, designs[i].cost);
  }
}

TEST(NavigatorTest, NominalIsOptimalAtExpectedMix) {
  DataSpec data = TestData();
  DesignSpaceSpec space;
  space.max_size_ratio = 8;
  WorkloadMix mix(0.5, 0.3, 0.1, 0.1);
  LsmDesign nominal = NominalTuning(space, data, mix);
  LsmDesign robust = RobustTuning(space, data, mix, 0.5);
  CostModel nm(nominal, data), rm(robust, data);
  EXPECT_LE(nm.WorkloadCost(mix), rm.WorkloadCost(mix) + 1e-12);
}

TEST(NavigatorTest, RobustWinsUnderWorstCaseShift) {
  DataSpec data = TestData();
  DesignSpaceSpec space;
  space.max_size_ratio = 8;
  WorkloadMix mix(0.9, 0.05, 0.03, 0.02);  // Believed write-heavy.
  const double rho = 0.8;
  LsmDesign nominal = NominalTuning(space, data, mix);
  LsmDesign robust = RobustTuning(space, data, mix, rho);
  // Endure's claim (§2.3.2): under the worst workload in the neighbourhood,
  // the robust tuning does no worse (usually strictly better).
  EXPECT_LE(WorstCaseCost(robust, data, mix, rho),
            WorstCaseCost(nominal, data, mix, rho) + 1e-12);
}

TEST(NavigatorTest, WorstCaseAtLeastNominal) {
  DataSpec data = TestData();
  LsmDesign design;
  WorkloadMix mix(0.25, 0.25, 0.25, 0.25);
  CostModel model(design, data);
  EXPECT_GE(WorstCaseCost(design, data, mix, 0.4),
            model.WorkloadCost(mix) - 1e-12);
  // rho = 0 degenerates to the nominal cost.
  EXPECT_NEAR(WorstCaseCost(design, data, mix, 0.0),
              model.WorkloadCost(mix), 1e-12);
}

}  // namespace
}  // namespace lsmlab
