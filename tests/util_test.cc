#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "util/arena.h"
#include "util/clock.h"
#include "util/coding.h"
#include "util/comparator.h"
#include "util/crc32c.h"
#include "util/hash.h"
#include "util/histogram.h"
#include "util/options.h"
#include "util/random.h"
#include "util/rate_limiter.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace lsmlab {
namespace {

// ---------------------------------------------------------------- Slice ----

TEST(SliceTest, Basics) {
  Slice empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(0u, empty.size());

  Slice s("hello");
  EXPECT_EQ(5u, s.size());
  EXPECT_EQ('h', s[0]);
  EXPECT_EQ("hello", s.ToString());

  std::string str = "world";
  Slice t(str);
  EXPECT_EQ("world", t.ToString());
}

TEST(SliceTest, Compare) {
  EXPECT_EQ(0, Slice("abc").compare(Slice("abc")));
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  EXPECT_GT(Slice("abc").compare(Slice("ab")), 0);
  EXPECT_TRUE(Slice("abc") == Slice("abc"));
  EXPECT_TRUE(Slice("abc") != Slice("abd"));
  EXPECT_TRUE(Slice("abc") < Slice("abd"));
}

TEST(SliceTest, PrefixOps) {
  Slice s("abcdef");
  EXPECT_TRUE(s.starts_with("abc"));
  EXPECT_FALSE(s.starts_with("abd"));
  s.remove_prefix(2);
  EXPECT_EQ("cdef", s.ToString());
  s.remove_suffix(1);
  EXPECT_EQ("cde", s.ToString());
}

// --------------------------------------------------------------- Status ----

TEST(StatusTest, OkIsDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ("OK", s.ToString());
}

TEST(StatusTest, ErrorCodes) {
  EXPECT_TRUE(Status::NotFound("k").IsNotFound());
  EXPECT_TRUE(Status::Corruption("c").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("i").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("io").IsIOError());
  EXPECT_TRUE(Status::Busy("b").IsBusy());
  EXPECT_TRUE(Status::NotSupported("n").IsNotSupported());
  EXPECT_TRUE(Status::Aborted("a").IsAborted());
  EXPECT_FALSE(Status::NotFound("k").ok());
}

TEST(StatusTest, MessageConcatenation) {
  Status s = Status::IOError("file.sst", "disk on fire");
  EXPECT_EQ("IO error: file.sst: disk on fire", s.ToString());
}

TEST(StatusTest, ResultCarriesValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(42, r.value());

  Result<int> e(Status::NotFound("nope"));
  EXPECT_FALSE(e.ok());
  EXPECT_TRUE(e.status().IsNotFound());
}

// --------------------------------------------------------------- Coding ----

TEST(CodingTest, Fixed32RoundTrip) {
  std::string s;
  for (uint32_t v : {0u, 1u, 255u, 256u, 0xdeadbeefu, 0xffffffffu}) {
    s.clear();
    PutFixed32(&s, v);
    ASSERT_EQ(4u, s.size());
    EXPECT_EQ(v, DecodeFixed32(s.data()));
  }
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string s;
  for (uint64_t v :
       {uint64_t{0}, uint64_t{1}, uint64_t{1} << 40, ~uint64_t{0}}) {
    s.clear();
    PutFixed64(&s, v);
    ASSERT_EQ(8u, s.size());
    EXPECT_EQ(v, DecodeFixed64(s.data()));
  }
}

TEST(CodingTest, Varint32RoundTrip) {
  std::string s;
  std::vector<uint32_t> values;
  for (uint32_t power = 0; power < 32; ++power) {
    values.push_back(uint32_t{1} << power);
    values.push_back((uint32_t{1} << power) - 1);
    values.push_back((uint32_t{1} << power) + 1);
  }
  for (uint32_t v : values) {
    PutVarint32(&s, v);
  }
  Slice input(s);
  for (uint32_t expected : values) {
    uint32_t actual;
    ASSERT_TRUE(GetVarint32(&input, &actual));
    EXPECT_EQ(expected, actual);
  }
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, Varint64RoundTrip) {
  std::string s;
  std::vector<uint64_t> values = {0, 100, ~uint64_t{0}};
  for (uint32_t power = 0; power < 64; ++power) {
    values.push_back(uint64_t{1} << power);
  }
  for (uint64_t v : values) {
    PutVarint64(&s, v);
  }
  Slice input(s);
  for (uint64_t expected : values) {
    uint64_t actual;
    ASSERT_TRUE(GetVarint64(&input, &actual));
    EXPECT_EQ(expected, actual);
  }
}

TEST(CodingTest, VarintLengthMatchesEncoding) {
  for (uint64_t v : {uint64_t{0}, uint64_t{127}, uint64_t{128},
                     uint64_t{1} << 20, ~uint64_t{0}}) {
    std::string s;
    PutVarint64(&s, v);
    EXPECT_EQ(static_cast<int>(s.size()), VarintLength(v));
  }
}

TEST(CodingTest, Varint32Truncated) {
  std::string s;
  PutVarint32(&s, 1 << 20);
  s.resize(1);  // Chop the continuation bytes.
  Slice input(s);
  uint32_t v;
  EXPECT_FALSE(GetVarint32(&input, &v));
}

TEST(CodingTest, LengthPrefixedSlice) {
  std::string s;
  PutLengthPrefixedSlice(&s, Slice("alpha"));
  PutLengthPrefixedSlice(&s, Slice(""));
  PutLengthPrefixedSlice(&s, Slice("beta"));
  Slice input(s);
  Slice v;
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ("alpha", v.ToString());
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ("", v.ToString());
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ("beta", v.ToString());
  EXPECT_FALSE(GetLengthPrefixedSlice(&input, &v));
}

// --------------------------------------------------------------- CRC32C ----

TEST(Crc32cTest, StandardVectors) {
  // CRC-32C of 32 zero bytes (well-known test vector).
  char zeros[32];
  memset(zeros, 0, sizeof(zeros));
  EXPECT_EQ(0x8a9136aau, crc32c::Value(zeros, sizeof(zeros)));

  char ffs[32];
  memset(ffs, 0xff, sizeof(ffs));
  EXPECT_EQ(0x62a8ab43u, crc32c::Value(ffs, sizeof(ffs)));
}

TEST(Crc32cTest, ExtendEqualsWhole) {
  const std::string data = "hello world, this is a crc test";
  uint32_t whole = crc32c::Value(data.data(), data.size());
  uint32_t part = crc32c::Value(data.data(), 10);
  part = crc32c::Extend(part, data.data() + 10, data.size() - 10);
  EXPECT_EQ(whole, part);
}

TEST(Crc32cTest, MaskRoundTrip) {
  uint32_t crc = crc32c::Value("foo", 3);
  EXPECT_NE(crc, crc32c::Mask(crc));
  EXPECT_NE(crc, crc32c::Mask(crc32c::Mask(crc)));
  EXPECT_EQ(crc, crc32c::Unmask(crc32c::Mask(crc)));
}

TEST(Crc32cTest, DifferentInputsDiffer) {
  EXPECT_NE(crc32c::Value("a", 1), crc32c::Value("b", 1));
  EXPECT_NE(crc32c::Value("foo", 3), crc32c::Value("foO", 3));
}

// ----------------------------------------------------------------- Hash ----

TEST(HashTest, Deterministic) {
  EXPECT_EQ(Hash32("abc", 3, 1), Hash32("abc", 3, 1));
  EXPECT_EQ(Hash64("abc", 3, 1), Hash64("abc", 3, 1));
}

TEST(HashTest, SeedChangesValue) {
  EXPECT_NE(Hash32("abc", 3, 1), Hash32("abc", 3, 2));
  EXPECT_NE(Hash64("abc", 3, 1), Hash64("abc", 3, 2));
}

TEST(HashTest, AllTailLengths) {
  // Exercise every switch arm in the tail handling.
  const char* data = "abcdefghijklmnop";
  for (size_t n = 0; n <= 16; ++n) {
    uint64_t h64 = Hash64(data, n, 7);
    uint32_t h32 = Hash32(data, n, 7);
    // Re-hash must agree; different lengths should (virtually always) differ.
    EXPECT_EQ(h64, Hash64(data, n, 7));
    EXPECT_EQ(h32, Hash32(data, n, 7));
    if (n > 0) {
      EXPECT_NE(h64, Hash64(data, n - 1, 7));
    }
  }
}

// --------------------------------------------------------------- Random ----

TEST(RandomTest, UniformInRange) {
  Random rnd(301);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rnd.Uniform(17), 17u);
  }
}

TEST(RandomTest, Deterministic) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RandomTest, DoubleInUnitInterval) {
  Random rnd(99);
  for (int i = 0; i < 10000; ++i) {
    double d = rnd.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, ZeroSeedIsUsable) {
  Random rnd(0);
  EXPECT_NE(rnd.Next64(), rnd.Next64());
}

// ---------------------------------------------------------------- Arena ----

TEST(ArenaTest, Empty) { Arena arena; }

TEST(ArenaTest, ManyAllocations) {
  std::vector<std::pair<size_t, char*>> allocated;
  Arena arena;
  const int kN = 10000;
  size_t bytes = 0;
  Random rnd(301);
  for (int i = 0; i < kN; ++i) {
    size_t s = (i % 100 == 0) ? rnd.Uniform(6000) + 1 : rnd.Uniform(20) + 1;
    char* r = (rnd.OneIn(10)) ? arena.AllocateAligned(s) : arena.Allocate(s);
    for (size_t b = 0; b < s; ++b) {
      r[b] = static_cast<char>(i % 256);  // Fill with a known pattern.
    }
    bytes += s;
    allocated.emplace_back(s, r);
    EXPECT_GE(arena.MemoryUsage(), bytes);
  }
  for (size_t i = 0; i < allocated.size(); ++i) {
    size_t num_bytes = allocated[i].first;
    const char* p = allocated[i].second;
    for (size_t b = 0; b < num_bytes; ++b) {
      EXPECT_EQ(static_cast<int>(p[b]) & 0xff, static_cast<int>(i % 256));
    }
  }
}

TEST(ArenaTest, AlignedAllocationIsAligned) {
  Arena arena;
  for (int i = 0; i < 100; ++i) {
    arena.Allocate(1);  // Misalign the bump pointer.
    char* p = arena.AllocateAligned(8);
    EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(p) %
                      alignof(std::max_align_t));
  }
}

// ------------------------------------------------------------ Histogram ----

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(0u, h.num());
  EXPECT_EQ(0.0, h.Average());
  EXPECT_EQ(0.0, h.Percentile(99));
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(42);
  EXPECT_EQ(1u, h.num());
  EXPECT_DOUBLE_EQ(42.0, h.Average());
  EXPECT_EQ(42.0, h.max());
}

TEST(HistogramTest, PercentilesOrdered) {
  Histogram h;
  Random rnd(17);
  for (int i = 0; i < 100000; ++i) {
    h.Add(static_cast<double>(rnd.Uniform(10000)));
  }
  double p50 = h.Percentile(50), p90 = h.Percentile(90),
         p99 = h.Percentile(99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // Uniform[0,10000): p50 should be near 5000.
  EXPECT_NEAR(p50, 5000, 700);
  EXPECT_NEAR(p99, 9900, 700);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Add(1);
  a.Add(2);
  b.Add(3);
  b.Add(4);
  a.Merge(b);
  EXPECT_EQ(4u, a.num());
  EXPECT_DOUBLE_EQ(2.5, a.Average());
  EXPECT_EQ(4.0, a.max());
  EXPECT_EQ(1.0, a.min());
}

// ----------------------------------------------------------- Comparator ----

TEST(ComparatorTest, BytewiseOrder) {
  const Comparator* cmp = BytewiseComparator();
  EXPECT_LT(cmp->Compare("a", "b"), 0);
  EXPECT_GT(cmp->Compare("b", "a"), 0);
  EXPECT_EQ(cmp->Compare("a", "a"), 0);
  EXPECT_STREQ("lsmlab.BytewiseComparator", cmp->Name());
}

TEST(ComparatorTest, ShortestSeparator) {
  const Comparator* cmp = BytewiseComparator();
  std::string start = "abcdefghij";
  cmp->FindShortestSeparator(&start, "abzzzz");
  EXPECT_GT(start.compare("abcdefghij"), 0);
  EXPECT_LT(start.compare("abzzzz"), 0);
  EXPECT_LE(start.size(), 10u);

  // Prefix case: must not change.
  start = "abc";
  cmp->FindShortestSeparator(&start, "abcde");
  EXPECT_EQ("abc", start);
}

TEST(ComparatorTest, ShortSuccessor) {
  const Comparator* cmp = BytewiseComparator();
  std::string key = "abc";
  cmp->FindShortSuccessor(&key);
  EXPECT_GT(key.compare("abc"), 0);

  key = "\xff\xff";
  cmp->FindShortSuccessor(&key);  // All 0xff: unchanged.
  EXPECT_EQ("\xff\xff", key);
}

// -------------------------------------------------------------- Options ----

TEST(OptionsTest, DefaultsValidate) {
  Options options;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(OptionsTest, RejectsBadSizeRatio) {
  Options options;
  options.size_ratio = 1;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
}

TEST(OptionsTest, RejectsMisorderedStallTriggers) {
  Options options;
  options.level0_slowdown_writes_trigger = 2;
  options.level0_file_num_compaction_trigger = 4;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
}

TEST(OptionsTest, DesignPointLabelMentionsLayout) {
  Options options;
  options.data_layout = DataLayout::kTiering;
  options.size_ratio = 4;
  std::string label = options.DesignPointLabel();
  EXPECT_NE(label.find("tiering"), std::string::npos);
  EXPECT_NE(label.find("T=4"), std::string::npos);
}

TEST(OptionsTest, EnumNames) {
  EXPECT_STREQ("leveling", DataLayoutName(DataLayout::kLeveling));
  EXPECT_STREQ("lazy-leveling", DataLayoutName(DataLayout::kLazyLeveling));
  EXPECT_STREQ("least-overlap",
               FilePickPolicyName(FilePickPolicy::kLeastOverlap));
  EXPECT_STREQ("skiplist", MemTableRepTypeName(MemTableRepType::kSkipList));
}

// ------------------------------------------------------------ MockClock ----

TEST(ClockTest, MockAdvances) {
  MockClock clock(1000);
  EXPECT_EQ(1000u, clock.NowMicros());
  clock.Advance(500);
  EXPECT_EQ(1500u, clock.NowMicros());
  clock.SleepForMicros(100);
  EXPECT_EQ(1600u, clock.NowMicros());
}

TEST(ClockTest, SystemClockMonotonic) {
  Clock* clock = SystemClock();
  uint64_t a = clock->NowMicros();
  uint64_t b = clock->NowMicros();
  EXPECT_LE(a, b);
}

// ----------------------------------------------------------- RateLimiter ----

TEST(RateLimiterTest, UnlimitedNeverBlocks) {
  MockClock clock;
  RateLimiter limiter(0, &clock);
  limiter.Request(1 << 30);
  EXPECT_EQ(static_cast<uint64_t>(1 << 30), limiter.total_bytes_through());
  EXPECT_EQ(0u, clock.NowMicros());  // No sleeping happened.
}

TEST(RateLimiterTest, ThrottlesToConfiguredRate) {
  MockClock clock;
  RateLimiter limiter(1000000, &clock);  // 1 MB/s.
  // Request 2 MB; virtual time must advance by about 2 seconds.
  for (int i = 0; i < 20; ++i) {
    limiter.Request(100000);
  }
  EXPECT_GE(clock.NowMicros(), 1800000u);
  EXPECT_EQ(2000000u, limiter.total_bytes_through());
}

TEST(RateLimiterTest, RateChangeTakesEffect) {
  MockClock clock;
  RateLimiter limiter(1000, &clock);
  limiter.SetBytesPerSecond(0);
  limiter.Request(1 << 20);  // Must not block under unlimited.
  EXPECT_EQ(static_cast<uint64_t>(1 << 20), limiter.total_bytes_through());
}

// ------------------------------------------------------------ ThreadPool ----

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.WaitForIdle();
  EXPECT_EQ(100, counter.load());
}

TEST(ThreadPoolTest, HighPriorityRunsFirst) {
  ThreadPool pool(1);
  std::mutex mu;
  std::vector<int> order;
  // Block the single worker so both tasks end up queued.
  std::atomic<bool> release{false};
  pool.Schedule([&release] {
    while (!release.load()) {
      std::this_thread::yield();
    }
  });
  pool.Schedule(
      [&] {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(2);
      },
      ThreadPool::Priority::kLow);
  pool.Schedule(
      [&] {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(1);
      },
      ThreadPool::Priority::kHigh);
  release.store(true);
  pool.WaitForIdle();
  ASSERT_EQ(2u, order.size());
  EXPECT_EQ(1, order[0]);  // High priority first.
  EXPECT_EQ(2, order[1]);
}

TEST(ThreadPoolTest, WaitForIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.WaitForIdle();  // Must not hang.
}

}  // namespace
}  // namespace lsmlab
