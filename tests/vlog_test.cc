// Direct unit tests of the WiscKey value-log manager (kvsep/vlog);
// db_test covers the integrated path.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "io/mem_env.h"
#include "kvsep/vlog.h"

namespace lsmlab {
namespace {

class VlogTest : public ::testing::Test {
 protected:
  VlogTest() : vlog_("/db", &env_) {
    EXPECT_TRUE(env_.CreateDir("/db").ok());
    EXPECT_TRUE(vlog_.OpenActive(1).ok());
  }

  MemEnv env_;
  VlogManager vlog_;
};

TEST_F(VlogTest, AppendReadRoundTrip) {
  VlogPointer ptr;
  ASSERT_TRUE(vlog_.Append("key1", "value-one", &ptr).ok());
  EXPECT_EQ(1u, ptr.file_number);
  EXPECT_EQ(9u, ptr.size);

  std::string value;
  ASSERT_TRUE(vlog_.Read(ptr, "key1", &value).ok());
  EXPECT_EQ("value-one", value);
}

TEST_F(VlogTest, ReadVerifiesKey) {
  VlogPointer ptr;
  ASSERT_TRUE(vlog_.Append("real-key", "v", &ptr).ok());
  std::string value;
  EXPECT_TRUE(vlog_.Read(ptr, "wrong-key", &value).IsCorruption());
}

TEST_F(VlogTest, PointerEncodingRoundTrip) {
  VlogPointer ptr;
  ptr.file_number = 42;
  ptr.offset = 123456;
  ptr.size = 789;
  std::string encoded;
  ptr.EncodeTo(&encoded);
  VlogPointer decoded;
  ASSERT_TRUE(decoded.DecodeFrom(encoded));
  EXPECT_EQ(42u, decoded.file_number);
  EXPECT_EQ(123456u, decoded.offset);
  EXPECT_EQ(789u, decoded.size);
  VlogPointer bad;
  EXPECT_FALSE(bad.DecodeFrom(Slice("\xff")));
}

TEST_F(VlogTest, MultipleAppendsHaveDistinctOffsets) {
  std::vector<VlogPointer> ptrs(3);
  ASSERT_TRUE(vlog_.Append("a", "aaaa", &ptrs[0]).ok());
  ASSERT_TRUE(vlog_.Append("b", "bb", &ptrs[1]).ok());
  ASSERT_TRUE(vlog_.Append("c", std::string(1000, 'c'), &ptrs[2]).ok());
  EXPECT_LT(ptrs[0].offset, ptrs[1].offset);
  EXPECT_LT(ptrs[1].offset, ptrs[2].offset);
  std::string value;
  ASSERT_TRUE(vlog_.Read(ptrs[1], "b", &value).ok());
  EXPECT_EQ("bb", value);
  ASSERT_TRUE(vlog_.Read(ptrs[2], "c", &value).ok());
  EXPECT_EQ(std::string(1000, 'c'), value);
}

TEST_F(VlogTest, GarbageAccounting) {
  VlogPointer p1, p2;
  ASSERT_TRUE(vlog_.Append("a", std::string(100, 'x'), &p1).ok());
  ASSERT_TRUE(vlog_.Append("b", std::string(100, 'y'), &p2).ok());
  EXPECT_DOUBLE_EQ(0.0, vlog_.GarbageRatio());

  vlog_.AddGarbage(p1.file_number, p1.size);
  EXPECT_GT(vlog_.GarbageRatio(), 0.4);
  EXPECT_LT(vlog_.GarbageRatio(), 0.6);
  EXPECT_EQ(100u, vlog_.GarbageBytes());
}

TEST_F(VlogTest, ForEachRecordWalksAll) {
  VlogPointer ptr;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(vlog_.Append("key" + std::to_string(i),
                             "value" + std::to_string(i), &ptr)
                    .ok());
  }
  int count = 0;
  ASSERT_TRUE(vlog_
                  .ForEachRecord(1,
                                 [&](const Slice& key, const Slice& value,
                                     const VlogPointer& p) {
                                   EXPECT_EQ("key" + std::to_string(count),
                                             key.ToString());
                                   EXPECT_EQ("value" + std::to_string(count),
                                             value.ToString());
                                   EXPECT_EQ(1u, p.file_number);
                                   ++count;
                                   return true;
                                 })
                  .ok());
  EXPECT_EQ(10, count);
}

TEST_F(VlogTest, ForEachRecordEarlyStop) {
  VlogPointer ptr;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(vlog_.Append("k", "v", &ptr).ok());
  }
  int count = 0;
  ASSERT_TRUE(vlog_
                  .ForEachRecord(1,
                                 [&](const Slice&, const Slice&,
                                     const VlogPointer&) {
                                   return ++count < 3;
                                 })
                  .ok());
  EXPECT_EQ(3, count);
}

TEST_F(VlogTest, RollToNewActiveLog) {
  VlogPointer old_ptr;
  ASSERT_TRUE(vlog_.Append("old", "old-value", &old_ptr).ok());
  ASSERT_TRUE(vlog_.OpenActive(2).ok());
  VlogPointer new_ptr;
  ASSERT_TRUE(vlog_.Append("new", "new-value", &new_ptr).ok());
  EXPECT_EQ(2u, new_ptr.file_number);
  // Old log remains readable after the roll.
  std::string value;
  ASSERT_TRUE(vlog_.Read(old_ptr, "old", &value).ok());
  EXPECT_EQ("old-value", value);
}

TEST_F(VlogTest, DeleteLogRemovesFileAndAccounting) {
  VlogPointer ptr;
  ASSERT_TRUE(vlog_.Append("k", "v", &ptr).ok());
  vlog_.AddGarbage(1, 1);
  ASSERT_TRUE(vlog_.OpenActive(2).ok());
  ASSERT_TRUE(vlog_.DeleteLog(1).ok());
  EXPECT_EQ(0u, vlog_.GarbageBytes());
  std::string value;
  EXPECT_FALSE(vlog_.Read(ptr, "k", &value).ok());
}

}  // namespace
}  // namespace lsmlab
