#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "workload/workload.h"

namespace lsmlab {
namespace {

TEST(ZipfianTest, ValuesInRange) {
  ZipfianGenerator gen(1000, 0.99, 42);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(gen.Next(), 1000u);
  }
}

TEST(ZipfianTest, IsSkewed) {
  ZipfianGenerator gen(10000, 0.99, 42);
  std::map<uint64_t, int> counts;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    counts[gen.Next()]++;
  }
  // The most popular key should take far more than the uniform 1/10000
  // share, and a small set of keys should dominate.
  int max_count = 0;
  for (const auto& [key, count] : counts) {
    max_count = std::max(max_count, count);
  }
  EXPECT_GT(max_count, kDraws / 1000);  // >100x the uniform share.
  // Distinct keys drawn should be well below the uniform expectation.
  EXPECT_LT(counts.size(), 9000u);
}

TEST(ZipfianTest, DeterministicForSeed) {
  ZipfianGenerator a(1000, 0.8, 7), b(1000, 0.8, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(WorkloadTest, KeyFormatSortsNumerically) {
  EXPECT_LT(WorkloadGenerator::FormatKey(9),
            WorkloadGenerator::FormatKey(10));
  EXPECT_LT(WorkloadGenerator::FormatKey(99999),
            WorkloadGenerator::FormatKey(100000));
}

TEST(WorkloadTest, WriteOnlyProducesOnlyInserts) {
  WorkloadGenerator gen(WorkloadSpec::WriteOnly(1000));
  std::set<std::string> keys;
  for (int i = 0; i < 1000; ++i) {
    Operation op = gen.Next();
    EXPECT_EQ(Operation::Type::kInsert, op.type);
    EXPECT_TRUE(keys.insert(op.key).second) << "duplicate insert key";
  }
  EXPECT_EQ(1000u, gen.live_keys());
}

TEST(WorkloadTest, MixFractionsRoughlyRespected) {
  WorkloadSpec spec;
  spec.num_preloaded_keys = 1000;
  spec.update_fraction = 0.3;
  spec.read_fraction = 0.4;
  spec.empty_read_fraction = 0.1;
  spec.scan_fraction = 0.1;
  spec.delete_fraction = 0.05;
  WorkloadGenerator gen(spec);

  std::map<Operation::Type, int> counts;
  const int kOps = 20000;
  for (int i = 0; i < kOps; ++i) {
    counts[gen.Next().type]++;
  }
  EXPECT_NEAR(counts[Operation::Type::kUpdate], kOps * 0.3, kOps * 0.03);
  EXPECT_NEAR(counts[Operation::Type::kRead], kOps * 0.4, kOps * 0.03);
  EXPECT_NEAR(counts[Operation::Type::kEmptyRead], kOps * 0.1, kOps * 0.02);
  EXPECT_NEAR(counts[Operation::Type::kScan], kOps * 0.1, kOps * 0.02);
  EXPECT_NEAR(counts[Operation::Type::kDelete], kOps * 0.05, kOps * 0.02);
  // Remainder are inserts.
  EXPECT_NEAR(counts[Operation::Type::kInsert], kOps * 0.05, kOps * 0.02);
}

TEST(WorkloadTest, ReadsReferenceExistingKeys) {
  WorkloadSpec spec;
  spec.num_preloaded_keys = 100;
  spec.read_fraction = 1.0;
  WorkloadGenerator gen(spec);
  for (int i = 0; i < 1000; ++i) {
    Operation op = gen.Next();
    ASSERT_EQ(Operation::Type::kRead, op.type);
    // Key index must be below the live-key horizon.
    EXPECT_LT(op.key, WorkloadGenerator::FormatKey(100));
  }
}

TEST(WorkloadTest, EmptyReadKeysNeverCollideWithInserts) {
  WorkloadSpec spec;
  spec.num_preloaded_keys = 50;
  spec.empty_read_fraction = 0.5;
  WorkloadGenerator gen(spec);
  for (int i = 0; i < 2000; ++i) {
    Operation op = gen.Next();
    if (op.type == Operation::Type::kEmptyRead) {
      EXPECT_NE(op.key.find("!absent"), std::string::npos);
    } else if (op.type == Operation::Type::kInsert) {
      EXPECT_EQ(op.key.find("!absent"), std::string::npos);
    }
  }
}

TEST(WorkloadTest, ValuesAreDeterministicPerKey) {
  WorkloadGenerator gen(WorkloadSpec::WriteOnly(10));
  std::string v1 = gen.MakeValue("key1", 64);
  std::string v2 = gen.MakeValue("key1", 64);
  std::string v3 = gen.MakeValue("key2", 64);
  EXPECT_EQ(v1, v2);
  EXPECT_NE(v1, v3);
  EXPECT_EQ(64u, v1.size());
}

TEST(WorkloadTest, SequentialDistributionInsertsInOrder) {
  WorkloadSpec spec;
  spec.num_preloaded_keys = 0;
  spec.distribution = KeyDistribution::kSequential;
  WorkloadGenerator gen(spec);
  std::string prev;
  for (int i = 0; i < 100; ++i) {
    Operation op = gen.Next();
    ASSERT_EQ(Operation::Type::kInsert, op.type);
    EXPECT_GT(op.key, prev);
    prev = op.key;
  }
}

TEST(WorkloadTest, PresetsSumToValidMixes) {
  for (auto spec : {WorkloadSpec::YcsbA(10), WorkloadSpec::YcsbB(10),
                    WorkloadSpec::YcsbC(10), WorkloadSpec::YcsbE(10)}) {
    double total = spec.update_fraction + spec.read_fraction +
                   spec.empty_read_fraction + spec.scan_fraction +
                   spec.delete_fraction;
    EXPECT_LE(total, 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace lsmlab
