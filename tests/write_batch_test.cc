#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "db/db.h"
#include "db/merge_operator.h"
#include "db/write_batch.h"
#include "io/mem_env.h"

namespace lsmlab {
namespace {

// ------------------------------------------------------------- unit level --

struct RecordingHandler : public WriteBatch::Handler {
  std::vector<std::string> events;
  void Put(const Slice& key, const Slice& value) override {
    events.push_back("put:" + key.ToString() + "=" + value.ToString());
  }
  void Delete(const Slice& key) override {
    events.push_back("del:" + key.ToString());
  }
  void SingleDelete(const Slice& key) override {
    events.push_back("sdel:" + key.ToString());
  }
  void Merge(const Slice& key, const Slice& operand) override {
    events.push_back("merge:" + key.ToString() + "+" + operand.ToString());
  }
};

TEST(WriteBatchTest, EmptyBatch) {
  WriteBatch batch;
  EXPECT_EQ(0u, batch.Count());
  RecordingHandler handler;
  EXPECT_TRUE(batch.Iterate(&handler).ok());
  EXPECT_TRUE(handler.events.empty());
}

TEST(WriteBatchTest, IterationPreservesOrder) {
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Delete("b");
  batch.Merge("c", "5");
  batch.SingleDelete("d");
  batch.Put("e", "");
  EXPECT_EQ(5u, batch.Count());

  RecordingHandler handler;
  ASSERT_TRUE(batch.Iterate(&handler).ok());
  ASSERT_EQ(5u, handler.events.size());
  EXPECT_EQ("put:a=1", handler.events[0]);
  EXPECT_EQ("del:b", handler.events[1]);
  EXPECT_EQ("merge:c+5", handler.events[2]);
  EXPECT_EQ("sdel:d", handler.events[3]);
  EXPECT_EQ("put:e=", handler.events[4]);
}

TEST(WriteBatchTest, SequenceRoundTrip) {
  WriteBatch batch;
  batch.Put("k", "v");
  batch.SetSequence(987654321);
  EXPECT_EQ(987654321u, batch.sequence());

  WriteBatch copy;
  ASSERT_TRUE(copy.SetRep(batch.rep()).ok());
  EXPECT_EQ(987654321u, copy.sequence());
  EXPECT_EQ(1u, copy.Count());
}

TEST(WriteBatchTest, ClearResets) {
  WriteBatch batch;
  batch.Put("k", "v");
  batch.Clear();
  EXPECT_EQ(0u, batch.Count());
}

TEST(WriteBatchTest, AppendConcatenatesCountsAndRecords) {
  WriteBatch dst, src;
  dst.Put("a", "1");
  dst.Delete("b");
  src.Put("c", "3");
  src.Merge("d", "4");
  src.SingleDelete("e");
  dst.Append(src);
  EXPECT_EQ(5u, dst.Count());
  EXPECT_EQ(3u, src.Count());  // Source is untouched.

  RecordingHandler handler;
  ASSERT_TRUE(dst.Iterate(&handler).ok());
  ASSERT_EQ(5u, handler.events.size());
  EXPECT_EQ("put:a=1", handler.events[0]);
  EXPECT_EQ("del:b", handler.events[1]);
  EXPECT_EQ("put:c=3", handler.events[2]);
  EXPECT_EQ("merge:d+4", handler.events[3]);
  EXPECT_EQ("sdel:e", handler.events[4]);
}

TEST(WriteBatchTest, AppendPreservesDestinationSequence) {
  WriteBatch dst, src;
  dst.Put("a", "1");
  dst.SetSequence(42);
  src.Put("b", "2");
  src.SetSequence(777);  // Follower sequences are ignored on append.
  dst.Append(src);
  EXPECT_EQ(42u, dst.sequence());
  EXPECT_EQ(2u, dst.Count());
}

TEST(WriteBatchTest, AppendEmptyBatches) {
  WriteBatch dst, src, empty;
  // Empty source: no-op.
  dst.Put("a", "1");
  dst.Append(empty);
  EXPECT_EQ(1u, dst.Count());
  RecordingHandler handler;
  ASSERT_TRUE(dst.Iterate(&handler).ok());
  EXPECT_EQ(1u, handler.events.size());
  // Empty destination adopts the source's records.
  src.Put("b", "2");
  empty.Append(src);
  EXPECT_EQ(1u, empty.Count());
  RecordingHandler handler2;
  ASSERT_TRUE(empty.Iterate(&handler2).ok());
  ASSERT_EQ(1u, handler2.events.size());
  EXPECT_EQ("put:b=2", handler2.events[0]);
}

TEST(WriteBatchTest, AppendTypedRecordRoundTrip) {
  // Raw typed records (e.g. vlog pointers) must survive an append intact.
  struct TypedHandler : public WriteBatch::Handler {
    std::vector<std::pair<ValueType, std::string>> records;
    void TypedRecord(ValueType type, const Slice& key,
                     const Slice& value) override {
      records.emplace_back(type, key.ToString() + "=" + value.ToString());
    }
    void Put(const Slice&, const Slice&) override {}
    void Delete(const Slice&) override {}
    void SingleDelete(const Slice&) override {}
    void Merge(const Slice&, const Slice&) override {}
  };

  WriteBatch dst, src;
  dst.PutTyped(kTypeValue, "k1", "v1");
  src.PutTyped(kTypeVlogPointer, "k2", "ptr-bytes");
  src.PutTyped(kTypeMerge, "k3", "+1");
  dst.Append(src);
  ASSERT_EQ(3u, dst.Count());

  TypedHandler handler;
  ASSERT_TRUE(dst.Iterate(&handler).ok());
  ASSERT_EQ(3u, handler.records.size());
  EXPECT_EQ(kTypeValue, handler.records[0].first);
  EXPECT_EQ("k1=v1", handler.records[0].second);
  EXPECT_EQ(kTypeVlogPointer, handler.records[1].first);
  EXPECT_EQ("k2=ptr-bytes", handler.records[1].second);
  EXPECT_EQ(kTypeMerge, handler.records[2].first);
  EXPECT_EQ("k3=+1", handler.records[2].second);

  // The appended rep round-trips through serialization (the WAL path).
  WriteBatch copy;
  ASSERT_TRUE(copy.SetRep(dst.rep()).ok());
  TypedHandler handler2;
  ASSERT_TRUE(copy.Iterate(&handler2).ok());
  EXPECT_EQ(handler.records, handler2.records);
}

TEST(WriteBatchTest, CorruptRepDetected) {
  WriteBatch batch;
  EXPECT_TRUE(batch.SetRep(Slice("tiny")).IsCorruption());

  // Valid header claiming one record, but truncated body.
  std::string rep(12, '\0');
  rep[8] = 1;  // count = 1.
  rep.push_back(static_cast<char>(kTypeValue));
  ASSERT_TRUE(batch.SetRep(rep).ok());
  RecordingHandler handler;
  EXPECT_TRUE(batch.Iterate(&handler).IsCorruption());
}

TEST(WriteBatchTest, CountMismatchDetected) {
  // Fuzzer-derived regression (fuzz_write_batch): a rep whose header count
  // disagrees with the records actually present must surface as Corruption
  // in both directions, never as a short or over-long replay.
  WriteBatch source;
  source.Put("a", "1");
  source.Put("b", "2");

  std::string overcounted = source.rep();
  overcounted[8] = 3;  // Header claims 3, body holds 2.
  WriteBatch batch;
  ASSERT_TRUE(batch.SetRep(overcounted).ok());
  RecordingHandler handler;
  EXPECT_TRUE(batch.Iterate(&handler).IsCorruption());

  std::string undercounted = source.rep();
  undercounted[8] = 1;  // Header claims 1, body holds 2.
  ASSERT_TRUE(batch.SetRep(undercounted).ok());
  RecordingHandler handler2;
  EXPECT_TRUE(batch.Iterate(&handler2).IsCorruption());
}

TEST(WriteBatchTest, UnknownRecordTagDetected) {
  // Fuzzer-derived regression: a tag byte past the newest known ValueType
  // (a record from a future or corrupted writer) must stop the replay with
  // Corruption rather than desynchronize the record stream.
  WriteBatch source;
  source.Put("k", "v");
  std::string rep = source.rep();
  rep[12] = '\x7e';  // First record's type byte: far beyond kTypeMerge.
  WriteBatch batch;
  ASSERT_TRUE(batch.SetRep(rep).ok());
  RecordingHandler handler;
  EXPECT_TRUE(batch.Iterate(&handler).IsCorruption());
}

// --------------------------------------------------------------- DB level --

class DbWriteBatchTest : public ::testing::Test {
 protected:
  DbWriteBatchTest() {
    options_.env = &env_;
    options_.write_buffer_size = 8 << 10;
    options_.merge_operator = NewInt64AddOperator();
  }

  void Open() { ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok()); }

  std::string Get(const std::string& key) {
    std::string value;
    Status s = db_->Get(ReadOptions(), key, &value);
    return s.ok() ? value : (s.IsNotFound() ? "NOT_FOUND" : s.ToString());
  }

  MemEnv env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(DbWriteBatchTest, AppliesAllOperations) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "doomed", "x").ok());
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  batch.Delete("doomed");
  batch.Merge("counter", "7");
  ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
  EXPECT_EQ("1", Get("a"));
  EXPECT_EQ("2", Get("b"));
  EXPECT_EQ("NOT_FOUND", Get("doomed"));
  EXPECT_EQ("7", Get("counter"));
}

TEST_F(DbWriteBatchTest, LaterOpsInBatchShadowEarlier) {
  Open();
  WriteBatch batch;
  batch.Put("k", "first");
  batch.Put("k", "second");
  batch.Delete("k");
  batch.Put("k", "final");
  ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
  EXPECT_EQ("final", Get("k"));
}

TEST_F(DbWriteBatchTest, AtomicAcrossRecovery) {
  Open();
  WriteBatch batch;
  for (int i = 0; i < 200; ++i) {
    batch.Put("batch-key" + std::to_string(i), "v" + std::to_string(i));
  }
  ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
  db_.reset();
  Open();
  // All 200 writes of the batch replay together.
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ("v" + std::to_string(i), Get("batch-key" + std::to_string(i)));
  }
}

TEST_F(DbWriteBatchTest, EmptyBatchIsNoop) {
  Open();
  WriteBatch batch;
  ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
  EXPECT_TRUE(db_->Write(WriteOptions(), nullptr).ok());
}

TEST_F(DbWriteBatchTest, BatchWithKvSeparation) {
  options_.kv_separation = true;
  options_.kv_separation_threshold = 50;
  Open();
  WriteBatch batch;
  std::string big(200, 'B');
  batch.Put("big", big);
  batch.Put("small", "s");
  ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
  EXPECT_EQ(big, Get("big"));
  EXPECT_EQ("s", Get("small"));
  EXPECT_GT(db_->vlog()->TotalBytes(), 0u);
  // Survives flush + reopen (WAL holds the pointer, vlog the bytes).
  ASSERT_TRUE(db_->Flush().ok());
  EXPECT_EQ(big, Get("big"));
}

TEST_F(DbWriteBatchTest, SequencesInterleaveWithSingleWrites) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "v1").ok());
  WriteBatch batch;
  batch.Put("k", "v2");
  ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "v3").ok());
  EXPECT_EQ("v3", Get("k"));
  // Snapshot between batch and final put sees the batch's value.
  db_.reset();
  Open();
  EXPECT_EQ("v3", Get("k"));
}

}  // namespace
}  // namespace lsmlab
